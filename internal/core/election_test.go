package core

import (
	"math"
	"testing"
	"testing/quick"

	"abenet/internal/clock"
	"abenet/internal/dist"
)

func TestElectionElectsExactlyOneLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 32} {
		for seed := uint64(0); seed < 20; seed++ {
			res, err := RunElection(ElectionConfig{N: n, A0: 0.3, Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if !res.Elected {
				t.Fatalf("n=%d seed=%d: no leader", n, seed)
			}
			if res.Leaders != 1 {
				t.Fatalf("n=%d seed=%d: %d leaders", n, seed, res.Leaders)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("n=%d seed=%d: violations %v", n, seed, res.Violations)
			}
			if res.LeaderIndex < 0 || res.LeaderIndex >= n {
				t.Fatalf("n=%d seed=%d: leader index %d", n, seed, res.LeaderIndex)
			}
		}
	}
}

func TestElectionSafetyWithKeepRunning(t *testing.T) {
	// Keep simulating long after the election: the leader count must stay
	// at one and residual messages must drain without violations.
	for seed := uint64(0); seed < 30; seed++ {
		res, err := RunElection(ElectionConfig{
			N:           6,
			A0:          0.4,
			Seed:        seed,
			KeepRunning: true,
			Horizon:     2000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Leaders > 1 {
			t.Fatalf("seed %d: %d leaders — safety violated", seed, res.Leaders)
		}
		if res.Leaders == 0 {
			t.Fatalf("seed %d: no leader after 2000 time units (mean election is ~n/A0)", seed)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations %v", seed, res.Violations)
		}
	}
}

func TestElectionLeaderUniquenessProperty(t *testing.T) {
	// Property over arbitrary seeds and sizes.
	f := func(seed uint64, nRaw uint8, a0Raw uint8) bool {
		n := 2 + int(nRaw)%14
		a0 := 0.05 + 0.9*float64(a0Raw)/255
		res, err := RunElection(ElectionConfig{N: n, A0: a0, Seed: seed})
		if err != nil {
			return false
		}
		return res.Elected && res.Leaders == 1 && len(res.Violations) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestElectionDeterministicReplay(t *testing.T) {
	run := func() ElectionResult {
		res, err := RunElection(ElectionConfig{N: 10, A0: 0.25, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Messages != b.Messages || a.Time != b.Time || a.LeaderIndex != b.LeaderIndex {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestElectionWorksAcrossDelayDistributions(t *testing.T) {
	// E10 core behaviour: any delay shape with mean 1 elects a leader.
	delays := []dist.Dist{
		dist.NewDeterministic(1),
		dist.NewUniform(0, 2),
		dist.NewExponential(1),
		dist.ParetoWithMean(1, 2.5),
		dist.NewRetransmission(0.5, 0.5), // mean 1
		dist.NewErlang(4, 1),
	}
	for _, d := range delays {
		for seed := uint64(0); seed < 5; seed++ {
			res, err := RunElection(ElectionConfig{N: 8, A0: 0.3, Delay: d, Seed: seed})
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			if res.Leaders != 1 || len(res.Violations) != 0 {
				t.Fatalf("%s seed %d: leaders=%d violations=%v", d.Name(), seed, res.Leaders, res.Violations)
			}
		}
	}
}

func TestElectionWithDriftingClocks(t *testing.T) {
	// E11 core behaviour: clock drift within [s_low, s_high] never breaks
	// correctness.
	models := []clock.Model{
		clock.NewUniformFixedModel(0.5, 2),
		clock.NewWanderingModel(0.25, 4, 1),
	}
	for _, m := range models {
		for seed := uint64(0); seed < 10; seed++ {
			res, err := RunElection(ElectionConfig{N: 8, A0: 0.3, Clocks: m, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Leaders != 1 || len(res.Violations) != 0 {
				t.Fatalf("%T seed %d: leaders=%d violations=%v", m, seed, res.Leaders, res.Violations)
			}
		}
	}
}

func TestElectionWithProcessingDelay(t *testing.T) {
	// E12 core behaviour: γ > 0 never breaks correctness.
	res, err := RunElection(ElectionConfig{
		N:          8,
		A0:         0.3,
		Processing: dist.NewExponential(0.2),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 1 || len(res.Violations) != 0 {
		t.Fatalf("leaders=%d violations=%v", res.Leaders, res.Violations)
	}
	if res.Params.Gamma != 0.2 {
		t.Fatalf("γ = %v, want 0.2", res.Params.Gamma)
	}
}

func TestConstantActivationAblationStillCorrect(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		res, err := RunElection(ElectionConfig{
			N:                  8,
			A0:                 0.3,
			ConstantActivation: true,
			Seed:               seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders != 1 || len(res.Violations) != 0 {
			t.Fatalf("seed %d: leaders=%d violations=%v", seed, res.Leaders, res.Violations)
		}
	}
}

func TestMessageComplexityScalesLinearly(t *testing.T) {
	// Smoke-level check of the headline claim (the full sweep is E3), with
	// the A0ForRing parameter choice that realises the paper's linear
	// bounds: mean messages and mean time from n=16 to n=128 must grow
	// about 8x (linear), not 64x (quadratic).
	mean := func(n int) (msgs, elapsed float64) {
		const runs = 60
		for seed := uint64(0); seed < runs; seed++ {
			res, err := RunElection(ElectionConfig{N: n, A0: DefaultA0(n), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			msgs += float64(res.Messages)
			elapsed += res.Time
		}
		return msgs / runs, elapsed / runs
	}
	m16, t16 := mean(16)
	m128, t128 := mean(128)
	if ratio := m128 / m16; ratio > 16 {
		t.Fatalf("messages grew %.1fx from n=16 to n=128 (m16=%.1f m128=%.1f); not linear", ratio, m16, m128)
	}
	if ratio := t128 / t16; ratio > 16 {
		t.Fatalf("time grew %.1fx from n=16 to n=128 (t16=%.1f t128=%.1f); not linear", ratio, t16, t128)
	}
}

func TestA0ForRing(t *testing.T) {
	if got, want := DefaultA0(10), 0.01; math.Abs(got-want) > 1e-12 {
		t.Fatalf("DefaultA0(10) = %v, want %v", got, want)
	}
	// Clamped into (0, 1/2].
	if got := A0ForRing(2, 0.001, 1, 100); got != 0.5 {
		t.Fatalf("clamp failed: %v", got)
	}
	// Scales inversely with delta, proportionally with tick and c.
	base := A0ForRing(32, 1, 1, 1)
	if got := A0ForRing(32, 2, 1, 1); math.Abs(got-base/2) > 1e-15 {
		t.Fatalf("delta scaling wrong: %v vs %v", got, base/2)
	}
	if got := A0ForRing(32, 1, 1, 2); math.Abs(got-2*base) > 1e-15 {
		t.Fatalf("c scaling wrong: %v vs %v", got, 2*base)
	}
	mustPanicCore(t, func() { A0ForRing(1, 1, 1, 1) })
	mustPanicCore(t, func() { A0ForRing(4, 0, 1, 1) })
	mustPanicCore(t, func() { A0ForRing(4, 1, 0, 1) })
	mustPanicCore(t, func() { A0ForRing(4, 1, 1, 0) })
}

func mustPanicCore(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestActivationProbabilityFormula(t *testing.T) {
	node, err := NewElectionNode(ElectionNodeConfig{RingSize: 8, A0: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := node.ActivationProbability(), 0.3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("d=1: p = %v, want %v", got, want)
	}
	node.d = 3
	want := 1 - math.Pow(0.7, 3)
	if got := node.ActivationProbability(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("d=3: p = %v, want %v", got, want)
	}
	node.d = 8
	if got := node.ActivationProbability(); got <= 1-math.Pow(0.7, 3) || got >= 1 {
		t.Fatalf("d=8: p = %v must grow with d but stay below 1", got)
	}
}

func TestActivationProbabilityConstantUnderAblation(t *testing.T) {
	node, err := NewElectionNode(ElectionNodeConfig{RingSize: 8, A0: 0.3, ConstantActivation: true})
	if err != nil {
		t.Fatal(err)
	}
	node.d = 5
	if got := node.ActivationProbability(); got != 0.3 {
		t.Fatalf("ablated p = %v, want constant 0.3", got)
	}
}

func TestInitialNodeState(t *testing.T) {
	node, err := NewElectionNode(ElectionNodeConfig{RingSize: 4, A0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if node.State() != Idle {
		t.Fatalf("initial state = %v", node.State())
	}
	if node.D() != 1 {
		t.Fatalf("initial d = %d", node.D())
	}
}

func TestNewElectionNodeValidation(t *testing.T) {
	cases := []ElectionNodeConfig{
		{RingSize: 1, A0: 0.5},
		{RingSize: 4, A0: 0},
		{RingSize: 4, A0: 1},
		{RingSize: 4, A0: -0.5},
		{RingSize: 4, A0: 0.5, TickInterval: -1},
		{RingSize: 4, A0: 0.5, TickInterval: math.Inf(1)},
	}
	for _, cfg := range cases {
		if _, err := NewElectionNode(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRunElectionValidation(t *testing.T) {
	if _, err := RunElection(ElectionConfig{N: 1, A0: 0.3}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunElection(ElectionConfig{N: 4, A0: 0}); err == nil {
		t.Fatal("A0=0 accepted")
	}
	if _, err := RunElection(ElectionConfig{N: 4, A0: 0.3, KeepRunning: true}); err == nil {
		t.Fatal("KeepRunning without horizon accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Idle: "idle", Active: "active", Passive: "passive", Leader: "leader",
	} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
	if got := State(0).String(); got != "state(0)" {
		t.Fatalf("unknown state string = %q", got)
	}
}

func TestLeaderIsMessageOriginatorStatisticsSane(t *testing.T) {
	// Activations create messages; relays conserve them; purges plus the
	// winning message plus in-flight must balance. We check a weaker but
	// exact accounting identity: messages = activations + relays.
	res, err := RunElection(ElectionConfig{N: 16, A0: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Messages, uint64(res.Activations+res.Knockouts+res.ResidualPurges); got < want {
		// Every activation and every relay is a send; every purge consumed
		// a distinct message, so sends >= purges + the winner's message.
		t.Fatalf("accounting broken: %d messages < %d purged", got, want)
	}
	if res.Activations == 0 {
		t.Fatal("leader elected without any activation")
	}
}
