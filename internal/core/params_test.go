package core

import (
	"testing"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/topology"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{Delta: 0, SLow: 1, SHigh: 1},
		{Delta: -1, SLow: 1, SHigh: 1},
		{Delta: 1, SLow: 0, SHigh: 1},
		{Delta: 1, SLow: 2, SHigh: 1},
		{Delta: 1, SLow: 1, SHigh: 1, Gamma: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestParamsAdmits(t *testing.T) {
	declared := Params{Delta: 2, SLow: 0.5, SHigh: 2, Gamma: 0.5}
	within := Params{Delta: 1.5, SLow: 0.8, SHigh: 1.5, Gamma: 0.2}
	if !declared.Admits(within) {
		t.Fatal("tighter network rejected")
	}
	tooSlow := within
	tooSlow.SLow = 0.4
	if declared.Admits(tooSlow) {
		t.Fatal("clock slower than declared accepted")
	}
	tooDelayed := within
	tooDelayed.Delta = 3
	if declared.Admits(tooDelayed) {
		t.Fatal("delay above declared δ accepted")
	}
}

type nopNode struct{}

func (nopNode) Init(*network.Context)                {}
func (nopNode) OnMessage(*network.Context, int, any) {}
func (nopNode) OnTimer(*network.Context, int)        {}

func buildNet(t *testing.T) *network.Network {
	t.Helper()
	net, err := network.New(network.Config{
		Graph:      topology.Ring(4),
		Links:      channel.RandomDelayFactory(dist.NewExponential(1.5)),
		Clocks:     clock.NewUniformFixedModel(0.5, 2),
		Processing: dist.NewDeterministic(0.1),
		Seed:       1,
	}, func(int) network.Node { return nopNode{} })
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestParamsOf(t *testing.T) {
	p := ParamsOf(buildNet(t))
	want := Params{Delta: 1.5, SLow: 0.5, SHigh: 2, Gamma: 0.1}
	if p != want {
		t.Fatalf("ParamsOf = %+v, want %+v", p, want)
	}
}

func TestVerifyNetwork(t *testing.T) {
	net := buildNet(t)
	ok := Params{Delta: 2, SLow: 0.5, SHigh: 2, Gamma: 0.2}
	if err := VerifyNetwork(net, ok); err != nil {
		t.Fatalf("valid declaration rejected: %v", err)
	}
	tooTight := Params{Delta: 1, SLow: 0.5, SHigh: 2, Gamma: 0.2}
	if err := VerifyNetwork(net, tooTight); err == nil {
		t.Fatal("δ violation not reported")
	}
	badGamma := Params{Delta: 2, SLow: 0.5, SHigh: 2, Gamma: 0.01}
	if err := VerifyNetwork(net, badGamma); err == nil {
		t.Fatal("γ violation not reported")
	}
	invalid := Params{Delta: -1, SLow: 0.5, SHigh: 2}
	if err := VerifyNetwork(net, invalid); err == nil {
		t.Fatal("invalid declaration not reported")
	}
}

func TestVerifyNetworkClockBounds(t *testing.T) {
	net := buildNet(t)
	narrowClocks := Params{Delta: 2, SLow: 0.9, SHigh: 1.1, Gamma: 0.2}
	if err := VerifyNetwork(net, narrowClocks); err == nil {
		t.Fatal("clock bound violations not reported")
	}
}
