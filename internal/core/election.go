package core

import (
	"fmt"
	"math"

	"abenet/internal/network"
)

// State is the election state of a node (Section 3 of the paper).
type State int

// The four node states. Idle nodes may wake up and contend; active nodes
// have a message of their own in flight; passive nodes only relay; the
// leader is the unique winner.
const (
	Idle State = iota + 1
	Active
	Passive
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Passive:
		return "passive"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// HopMessage is the single message type of the election algorithm: a hop
// counter in {1..n} certifying that Hop−1 consecutive predecessors of the
// receiver are passive.
//
// Epoch is always 0 in the paper's algorithm. Under the opt-in
// re-candidacy rule it stamps which re-candidacy wave the token belongs
// to: a passivity certificate is only valid within the epoch whose resets
// produced it, so nodes purge tokens from older epochs and reset their
// knowledge when a newer epoch reaches them.
type HopMessage struct {
	Hop   int
	Epoch int
}

// HopCount exposes the relay counter to the causal tracer (trace.HopCarrier):
// a token relayed over k consecutive hops carries Hop ≥ k, which the
// trace/causal analysis checks against the measured chain length.
func (m HopMessage) HopCount() int { return m.Hop }

// tickTimer is the kind of the per-node wake-up timer.
const tickTimer = 1

// A0ForRing returns the base activation parameter for a ring of size n with
// expected per-link delay delta and local tick interval tick, scaled by the
// aggressiveness constant c (c = 1 is the balanced default).
//
// Rationale: the adaptive rule keeps the network-wide activation rate at
// about A0·n per tick — constant over time, which is the paper's stated
// design goal. A freshly activated node's message needs about n·delta time
// to traverse the ring; the election succeeds quickly once the expected
// number of interfering activations within one traversal, A0·n·(n·delta) /
// tick, is a small constant c. Solving gives A0 = c·tick/(n²·delta): with
// this choice the algorithm waits Θ(n) expected time for a viable
// activation, spends Θ(n) on the winning traversal and Θ(1) expected failed
// rounds of Θ(n) messages — the paper's average linear time and message
// complexity. Larger c trades more knockout collisions (messages) for less
// waiting (time); smaller c the reverse (experiment E6 sweeps c).
//
// The result is clamped into (0, 1/2] so it is always a valid probability.
func A0ForRing(n int, delta, tick, c float64) float64 {
	if n < 2 {
		panic(fmt.Sprintf("core: A0ForRing needs n >= 2, got %d", n))
	}
	if !(delta > 0) || !(tick > 0) || !(c > 0) {
		panic(fmt.Sprintf("core: A0ForRing needs positive delta, tick and c (got %g, %g, %g)", delta, tick, c))
	}
	a0 := c * tick / (float64(n) * float64(n) * delta)
	if a0 > 0.5 {
		a0 = 0.5
	}
	return a0
}

// DefaultA0 is A0ForRing for the canonical environment: unit expected
// delay, unit ticks, c = 1.
func DefaultA0(n int) float64 { return A0ForRing(n, 1, 1, 1) }

// ElectionNode runs the paper's election algorithm for anonymous,
// unidirectional rings of known size n:
//
//   - If idle, at every local clock tick, with probability 1−(1−A0)^d
//     become active and send ⟨1⟩.
//   - On receiving ⟨hop⟩, set d := max(d, hop); then if idle become
//     passive and send ⟨d+1⟩; if passive send ⟨d+1⟩; if active become
//     leader when hop = n, otherwise idle — purging the message either way.
//
// The exponent d in the activation probability is the paper's key idea: d−1
// predecessors are known passive, so a node that speaks for d ring
// positions raises its wake-up rate to keep the *overall* activation rate
// constant over time, yielding linear average time and message complexity.
type ElectionNode struct {
	ringSize     int
	a0           float64
	tickInterval float64
	stopOnLeader bool
	constantAct  bool
	sendPort     int
	recandidacy  float64 // passive→idle timeout in local clock units; 0 disables

	state State
	d     int
	epoch int // re-candidacy wave this node's knowledge belongs to; 0 forever in the paper's algorithm

	// lastActivity is the local-clock instant of the node's last protocol
	// activity (message seen or state transition), tracked only when
	// re-candidacy is enabled so disabled runs stay byte-identical.
	lastActivity float64

	// Counters for experiments and invariant checks.
	Activations    int      // idle→active transitions
	Knockouts      int      // messages purged while active (hop < n)
	Relays         int      // messages forwarded (as idle or passive)
	ResidualPurges int      // messages purged after becoming leader
	Recandidacies  int      // timeout-driven returns to the idle state (re-candidacy mode only)
	StalePurges    int      // tokens purged for carrying an outdated epoch (re-candidacy mode only)
	Violations     []string // invariant violations observed (always empty if the algorithm is correct)
}

var _ network.Node = (*ElectionNode)(nil)

// ElectionNodeConfig configures one election node.
type ElectionNodeConfig struct {
	// RingSize is the known ring size n (the paper assumes known n).
	RingSize int
	// A0 is the base activation parameter, in (0, 1).
	A0 float64
	// TickInterval is the local-clock period between wake-up attempts.
	// The paper's "every clock tick" is one local time unit; 0 means 1.
	TickInterval float64
	// StopOnLeader halts the network as soon as this node wins. Turn it
	// off for safety experiments that keep running to look for a second
	// leader.
	StopOnLeader bool
	// ConstantActivation disables the paper's d-adaptive wake-up rule and
	// always activates with probability A0. This is the E5 ablation: it
	// remains correct but loses the constant overall wake-up rate that
	// gives the algorithm its linear complexity.
	ConstantActivation bool
	// SendPort is the out-port leading to the node's ring successor. On
	// the unidirectional ring it is 0; on richer topologies it is the port
	// of the embedded Hamiltonian cycle (topology.RingEmbedding).
	SendPort int
	// RecandidacyTimeout, when positive, lets a passive node return to the
	// idle state (with d reset to 1, as if restarted by churn) after that
	// many local clock units without seeing a single message. The paper's
	// algorithm has no such rule — once passive, forever passive — which is
	// correct in the fault-free model but leaves a healed partition
	// leaderless forever: every token died at the cut and nobody is left to
	// re-candidate. The timeout restores liveness after such faults without
	// requiring restart churn. Choose it large against n·δ (several ring
	// traversals) so a quiesced network is overwhelmingly likely before
	// anyone re-candidates; 0 (the default) disables the rule and keeps
	// runs byte-identical to the unmodified algorithm.
	RecandidacyTimeout float64
}

// NewElectionNode validates the configuration and returns a node in the
// initial state (idle, d = 1).
func NewElectionNode(cfg ElectionNodeConfig) (*ElectionNode, error) {
	if cfg.RingSize < 2 {
		return nil, fmt.Errorf("core: ring size %d must be at least 2", cfg.RingSize)
	}
	if !(cfg.A0 > 0 && cfg.A0 < 1) {
		return nil, fmt.Errorf("core: A0 = %g must be in (0, 1)", cfg.A0)
	}
	if cfg.TickInterval < 0 || math.IsNaN(cfg.TickInterval) || math.IsInf(cfg.TickInterval, 0) {
		return nil, fmt.Errorf("core: tick interval %g must be non-negative and finite", cfg.TickInterval)
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 1
	}
	if cfg.SendPort < 0 {
		return nil, fmt.Errorf("core: send port %d must be non-negative", cfg.SendPort)
	}
	if cfg.RecandidacyTimeout < 0 || math.IsNaN(cfg.RecandidacyTimeout) || math.IsInf(cfg.RecandidacyTimeout, 0) {
		return nil, fmt.Errorf("core: re-candidacy timeout %g must be non-negative and finite", cfg.RecandidacyTimeout)
	}
	return &ElectionNode{
		ringSize:     cfg.RingSize,
		a0:           cfg.A0,
		tickInterval: cfg.TickInterval,
		stopOnLeader: cfg.StopOnLeader,
		constantAct:  cfg.ConstantActivation,
		sendPort:     cfg.SendPort,
		recandidacy:  cfg.RecandidacyTimeout,
		state:        Idle,
		d:            1,
	}, nil
}

// State returns the node's current election state.
func (e *ElectionNode) State() State { return e.state }

// D returns the node's current knowledge counter d (d−1 predecessors are
// known passive).
func (e *ElectionNode) D() int { return e.d }

// ActivationProbability returns the per-tick wake-up probability at the
// node's current knowledge: 1−(1−A0)^d, or the constant A0 under the
// ablation.
func (e *ElectionNode) ActivationProbability() float64 {
	if e.constantAct {
		return e.a0
	}
	return 1 - math.Pow(1-e.a0, float64(e.d))
}

// Init implements network.Node: start the local tick loop.
func (e *ElectionNode) Init(ctx *network.Context) {
	ctx.SetLocalTimerFunc(e.tickInterval, tickTimer)
}

// OnTimer implements network.Node: the idle wake-up rule, plus the opt-in
// re-candidacy rule for passive nodes.
func (e *ElectionNode) OnTimer(ctx *network.Context, kind int) {
	if kind != tickTimer {
		e.violate("unexpected timer kind %d", kind)
		return
	}
	// The tick loop runs for the node's lifetime; only idle ticks can act.
	ctx.SetLocalTimerFunc(e.tickInterval, tickTimer)
	if e.recandidacy > 0 && (e.state == Passive || e.state == Active) &&
		ctx.LocalTime()-e.lastActivity >= e.recandidacy {
		// Nothing has flowed past this node for the whole timeout: assume
		// the election wedged (e.g. every token died at a partition cut —
		// including this node's own, if it is still waiting as an active
		// candidate) and rejoin as a fresh candidate in a new epoch. The
		// epoch bump is what keeps the paper's d+1 relay jumps sound: d
		// certifies "d−1 consecutive predecessors are passive", and a
		// passive→idle reset silently voids every downstream d that
		// counted this node — so knowledge accumulated before the reset
		// must never mix with knowledge after it. Tokens carry the epoch;
		// older-epoch tokens are purged, newer-epoch tokens reset d as
		// they pass, and within one epoch the fault-free invariants hold.
		e.state = Idle
		e.d = 1
		e.epoch++
		e.Recandidacies++
		e.lastActivity = ctx.LocalTime()
	}
	if e.state != Idle {
		return
	}
	if ctx.Rand().Bool(e.ActivationProbability()) {
		e.state = Active
		e.Activations++
		if e.recandidacy > 0 {
			// The candidacy is this node's own activity: give the token a
			// full timeout's worth of patience to come back around.
			e.lastActivity = ctx.LocalTime()
		}
		ctx.Send(e.sendPort, HopMessage{Hop: 1, Epoch: e.epoch})
	}
}

// OnMessage implements network.Node: the forwarding/knockout rule.
func (e *ElectionNode) OnMessage(ctx *network.Context, _ int, payload any) {
	msg, ok := payload.(HopMessage)
	if !ok {
		e.violate("foreign payload %T", payload)
		return
	}
	if e.recandidacy > 0 && e.state != Leader {
		switch {
		case msg.Epoch < e.epoch:
			// A token from before a re-candidacy wave: its passivity
			// certificate counts nodes that have since reset, so it must
			// not knock anyone out, win, or feed anyone's d. Purge it.
			e.StalePurges++
			return
		case msg.Epoch > e.epoch:
			// A newer wave reached this node: all pre-wave knowledge is
			// void. Adopt the epoch with fresh d; an own candidacy from
			// the old epoch is void too (its token, if alive, will be
			// purged — and counted — as stale wherever it lands, so this
			// demotion bumps no counter: the node goes on to handle the
			// incoming token normally, typically relaying it.
			e.epoch = msg.Epoch
			e.d = 1
			if e.state == Active {
				e.state = Idle
			}
		}
		// Current-epoch traffic proves the election is flowing; push the
		// re-candidacy deadline out. All of this is guarded so disabled
		// runs never touch the local clock here and stay byte-identical.
		e.lastActivity = ctx.LocalTime()
	}
	if msg.Hop < 1 || msg.Hop > e.ringSize {
		// The algorithm guarantees hop ∈ {1..n}; seeing anything else
		// means the protocol (or this implementation) is broken.
		e.violate("hop %d outside [1, %d]", msg.Hop, e.ringSize)
		return
	}
	if msg.Hop > e.d {
		e.d = msg.Hop
	}

	switch e.state {
	case Idle:
		e.state = Passive
		e.Relays++
		ctx.Send(e.sendPort, HopMessage{Hop: e.d + 1, Epoch: e.epoch})
	case Passive:
		e.Relays++
		ctx.Send(e.sendPort, HopMessage{Hop: e.d + 1, Epoch: e.epoch})
	case Active:
		if msg.Hop == e.ringSize {
			e.state = Leader
			if e.stopOnLeader {
				ctx.StopNetwork("leader elected")
			}
		} else {
			e.Knockouts++
			e.state = Idle
		}
		// The message is purged in both cases: no forward.
	case Leader:
		// With message reordering the leader's earlier activations can
		// leave residual messages alive; by the time the leader is
		// elected every other node is passive, so such messages circulate
		// straight back to the leader. Purge them silently — they are
		// part of correct executions (observable with StopOnLeader off).
		e.ResidualPurges++
	default:
		e.violate("impossible state %v", e.state)
	}
}

func (e *ElectionNode) violate(format string, args ...any) {
	e.Violations = append(e.Violations, fmt.Sprintf(format, args...))
}
