package core

import (
	"fmt"
	"testing"

	"abenet/internal/dist"
)

// TestGoldenSeeds pins the full trajectory of RunElection at seed 42 on
// small rings (n = 4, 8, 16) and across every delay family at n = 8. Like
// TestGoldenRun, the pins are deliberately brittle: a change to the event
// kernel's tie-breaking, the RNG stream layout, or any distribution's
// sampling algorithm (number or order of variates consumed per Sample)
// shifts at least one of these trajectories. Intentional changes must
// regenerate the table below and justify the change in the commit message.
//
// Time is pinned as a %.9g string rather than a raw float64 so the table
// stays readable while still catching any drift above rounding noise.
func TestGoldenSeeds(t *testing.T) {
	delays := map[string]dist.Dist{
		"exp":     nil, // default: Exponential(1)
		"det":     dist.NewDeterministic(1),
		"uniform": dist.NewUniform(0, 2),
		"pareto":  dist.ParetoWithMean(1, 1.5),
		"retx":    dist.NewRetransmission(0.5, 0.5),
		"erlang":  dist.NewErlang(4, 1),
	}
	golden := []struct {
		delay                                       string
		n, leader, messages, activations, knockouts int
		time                                        string
	}{
		{"exp", 4, 1, 8, 3, 2, "9.19898652"},
		{"exp", 8, 7, 8, 1, 0, "19.8543429"},
		{"exp", 16, 6, 16, 1, 0, "55.7411288"},
		{"det", 8, 7, 8, 1, 0, "18"},
		{"uniform", 8, 7, 8, 1, 0, "21.0081605"},
		{"pareto", 8, 7, 8, 1, 0, "16.2780861"},
		{"retx", 8, 7, 8, 1, 0, "19"},
		{"erlang", 8, 7, 8, 1, 0, "17.4052757"},
	}
	for _, g := range golden {
		g := g
		t.Run(fmt.Sprintf("%s/n=%d", g.delay, g.n), func(t *testing.T) {
			d, ok := delays[g.delay]
			if !ok {
				t.Fatalf("unknown delay family %q", g.delay)
			}
			res, err := RunElection(ElectionConfig{
				N: g.n, A0: DefaultA0(g.n), Delay: d, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Leaders != 1 || len(res.Violations) != 0 {
				t.Fatalf("leaders=%d violations=%v", res.Leaders, res.Violations)
			}
			got := []int{res.LeaderIndex, int(res.Messages), res.Activations, res.Knockouts}
			want := []int{g.leader, g.messages, g.activations, g.knockouts}
			for i, name := range []string{"leader", "messages", "activations", "knockouts"} {
				if got[i] != want[i] {
					t.Errorf("%s = %d, want %d", name, got[i], want[i])
				}
			}
			if ts := fmt.Sprintf("%.9g", res.Time); ts != g.time {
				t.Errorf("time = %s, want %s", ts, g.time)
			}
		})
	}
}
