package core

import (
	"fmt"
	"testing"

	"abenet/internal/faults"
	"abenet/internal/simtime"
)

// healedPartition is the liveness trap documented in examples/lossy since
// PR 3: the ring is cut in half during [0, 60) and then healed. Every token
// dies at the cut, the survivors end up passive, and the paper's algorithm
// has no way back — passive nodes never re-candidate.
func healedPartition() *faults.Plan {
	return &faults.Plan{Events: faults.PartitionDuring(0, 60, 0, 1, 2, 3, 4, 5, 6, 7)}
}

// TestHealedPartitionStaysWedgedWithoutRecandidacy pins the bug's
// observable: with the timeout disabled (the default), the healed ring
// remains leaderless to the horizon.
func TestHealedPartitionStaysWedgedWithoutRecandidacy(t *testing.T) {
	res, err := RunElection(ElectionConfig{
		N: 16, A0: DefaultA0(16), Seed: 11,
		Horizon: simtime.Time(2000),
		Faults:  healedPartition(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elected {
		t.Fatalf("healed partition elected a leader without re-candidacy — the wedge this suite documents is gone: %+v", res)
	}
	if res.Recandidacies != 0 {
		t.Fatalf("recandidacies = %d with the timeout disabled", res.Recandidacies)
	}
	if float64(res.Time) != 2000 {
		t.Fatalf("run ended at t=%g, want the full horizon 2000", res.Time)
	}
}

// TestRecandidacyRestoresLivenessAfterHeal is the deterministic regression
// pin for the fix: the identical scenario with an opt-in re-candidacy
// timeout elects exactly one leader, without churn, with the exact
// trajectory below. Like the golden-seed pins, the literals are
// deliberately brittle — any change to the kernel's ordering, the RNG
// layout or the re-candidacy rule shifts them and must be justified.
func TestRecandidacyRestoresLivenessAfterHeal(t *testing.T) {
	run := func() ElectionResult {
		res, err := RunElection(ElectionConfig{
			N: 16, A0: DefaultA0(16), Seed: 11,
			Horizon:            simtime.Time(2000),
			Faults:             healedPartition(),
			RecandidacyTimeout: 150,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Leaders != 1 || !res.Elected {
		t.Fatalf("leaders = %d, want exactly 1", res.Leaders)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Recandidacies == 0 {
		t.Fatal("the election recovered without a single re-candidacy — the test no longer exercises the fix")
	}
	want := struct {
		leader, recand, activations, knockouts int
		messages                               uint64
		time                                   string
	}{leader: 6, recand: 14, activations: 6, knockouts: 2, messages: 35, time: "231.746595"}
	if res.LeaderIndex != want.leader {
		t.Errorf("leader = %d, want %d", res.LeaderIndex, want.leader)
	}
	if res.Recandidacies != want.recand {
		t.Errorf("recandidacies = %d, want %d", res.Recandidacies, want.recand)
	}
	if res.Activations != want.activations {
		t.Errorf("activations = %d, want %d", res.Activations, want.activations)
	}
	if res.Knockouts != want.knockouts {
		t.Errorf("knockouts = %d, want %d", res.Knockouts, want.knockouts)
	}
	if res.Messages != want.messages {
		t.Errorf("messages = %d, want %d", res.Messages, want.messages)
	}
	if ts := fmt.Sprintf("%.9g", res.Time); ts != want.time {
		t.Errorf("time = %s, want %s", ts, want.time)
	}

	// Determinism: the fix must not cost reproducibility.
	again := run()
	if again.LeaderIndex != res.LeaderIndex || again.Time != res.Time ||
		again.Messages != res.Messages || again.Recandidacies != res.Recandidacies {
		t.Fatalf("replay diverged: %+v vs %+v", again, res)
	}
}

// TestRecandidacySafetyUnderKeepRunning runs the healed-partition scenario
// with stop-on-leader disabled across seeds: re-candidacy may keep cycling
// after the election, but it must never mint a second leader (the old
// leader purges every later token) and never trip an invariant.
func TestRecandidacySafetyUnderKeepRunning(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		res, err := RunElection(ElectionConfig{
			N: 16, A0: DefaultA0(16), Seed: seed,
			Horizon:            simtime.Time(5000),
			KeepRunning:        true,
			Faults:             healedPartition(),
			RecandidacyTimeout: 150,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders > 1 {
			t.Fatalf("seed %d: %d leaders", seed, res.Leaders)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations %v", seed, res.Violations)
		}
	}
}

// TestRecandidacyDisabledIsByteIdentical pins that a zero timeout is not
// merely "mostly the same" but the exact unmodified algorithm: the golden
// seed-42 n=16 trajectory from TestGoldenSeeds, reproduced through a config
// that spells the zero explicitly.
func TestRecandidacyDisabledIsByteIdentical(t *testing.T) {
	res, err := RunElection(ElectionConfig{
		N: 16, A0: DefaultA0(16), Seed: 42,
		RecandidacyTimeout: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderIndex != 6 || res.Messages != 16 || res.Activations != 1 || res.Knockouts != 0 {
		t.Fatalf("zero-timeout trajectory drifted from the golden pin: %+v", res)
	}
	if ts := fmt.Sprintf("%.9g", res.Time); ts != "55.7411288" {
		t.Fatalf("time = %s, want the golden 55.7411288", ts)
	}
}

// TestRecandidacyConfigValidation rejects non-finite and negative timeouts.
func TestRecandidacyConfigValidation(t *testing.T) {
	if _, err := NewElectionNode(ElectionNodeConfig{
		RingSize: 4, A0: 0.1, RecandidacyTimeout: -1,
	}); err == nil {
		t.Fatal("negative re-candidacy timeout accepted")
	}
}
