// Package probe is a deterministic, allocation-light time-series
// collection layer for simulation runs.
//
// A Collector samples a fixed set of named gauges — instantaneous float64
// readings such as in-flight messages, cumulative sends, or a protocol's
// candidate count — on a configurable cadence: every K executed events,
// at fixed virtual-time intervals, or both. It is driven from the sim
// kernel's post-event observer hook, which runs after each event's handler
// and before the next pop, so sampling can never perturb the schedule: an
// observed run is byte-identical to an unobserved one at the same
// (Env, Plan, seed). The golden pins in the runner tests enforce that.
//
// Gauges are pull-based: protocols and networks expose their state through
// the Observable interface and the Collector reads it when a sample is
// due. Sample values live in one flat backing slice (one append per
// sample, amortised), so a long observed run costs a handful of slice
// growths rather than per-sample allocations.
package probe

import (
	"errors"
	"fmt"
	"math"

	"abenet/internal/simtime"
)

// DefaultMaxSamples bounds a series when Config.MaxSamples is zero.
// Cadence samples past the cap are counted in Series.Truncated, not
// stored; the closing sample taken by Final is exempt from the cap.
const DefaultMaxSamples = 100_000

// Gauge is one named instantaneous reading. Read must be cheap, must not
// mutate any simulation state, and must not schedule or cancel events —
// it runs inside the kernel's observer hook.
type Gauge struct {
	Name string
	Read func() float64
}

// Observable exposes a component's gauges for sampling. Networks and
// protocol runtimes implement it; the engine hands every relevant
// Observable to NewCollector when a run is observed.
type Observable interface {
	ProbeGauges() []Gauge
}

// Config selects the sampling cadence. At least one of EveryEvents and
// Interval must be set; when both are, a sample is taken whenever either
// cadence is due (at most one sample per executed event).
type Config struct {
	// EveryEvents samples after every K-th executed event (K ≥ 1).
	EveryEvents uint64 `json:"every_events,omitempty"`
	// Interval samples at fixed virtual-time intervals: the first event
	// executed at or after each multiple of Interval triggers a sample.
	Interval float64 `json:"interval,omitempty"`
	// MaxSamples caps the stored cadence samples; 0 means
	// DefaultMaxSamples. Cadence samples past the cap are dropped and
	// counted in Series.Truncated; the closing sample recorded by Final
	// is exempt, so a series holds at most MaxSamples+1 rows.
	MaxSamples int `json:"max_samples,omitempty"`

	// Sink, when non-nil, receives every recorded sample as it is taken
	// (including the final end-of-run sample). The names slice is shared
	// across calls and must not be mutated; the sample's Values slice is
	// only valid for the duration of the call unless copied. Sink is a
	// live-streaming hook, not part of the serialised configuration.
	Sink func(names []string, s Sample) `json:"-"`
}

// Validate checks the cadence configuration.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.EveryEvents == 0 && c.Interval == 0 {
		return errors.New("probe: config needs every_events and/or interval")
	}
	if c.Interval < 0 || math.IsInf(c.Interval, 0) || math.IsNaN(c.Interval) {
		return fmt.Errorf("probe: interval %g must be finite and non-negative", c.Interval)
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("probe: max_samples %d must be non-negative", c.MaxSamples)
	}
	return nil
}

// Sample is one synchronous reading of every gauge, stamped with the
// virtual time and the executed-event count at which it was taken.
type Sample struct {
	// Time is the kernel's virtual time at the sample instant.
	Time float64 `json:"time"`
	// Event is the number of events executed so far (the sample was taken
	// immediately after event number Event ran).
	Event uint64 `json:"event"`
	// Values holds one reading per series name, in Series.Names order.
	Values []float64 `json:"values"`
}

// Series is a completed time series: the gauge names (column headers) and
// the samples in the order they were taken.
type Series struct {
	// Names are the gauge names, one per column of every sample.
	Names []string `json:"names"`
	// Samples are the recorded rows, in sampling order.
	Samples []Sample `json:"samples"`
	// Truncated counts cadence samples dropped after MaxSamples was
	// reached. A non-zero value means the stored rows are a prefix plus
	// the end-of-run closing sample, not the whole run.
	Truncated int `json:"truncated,omitempty"`
}

// Collector samples gauges on the configured cadence. Create one with
// NewCollector, drive it via Observe from the kernel's observer hook, and
// close it with Final; Series returns the result. A Collector is not safe
// for concurrent use — it lives on the single-threaded simulation path.
type Collector struct {
	cfg    Config
	names  []string
	gauges []func() float64

	nextEvent uint64       // next executed-count due for EveryEvents cadence
	nextTime  simtime.Time // next virtual instant due for Interval cadence

	samples   []Sample
	backing   []float64 // flat storage; each Sample.Values slices into it
	max       int
	truncated int
	finalized bool
}

// NewCollector builds a collector over the gauges of every observable, in
// argument order. Gauge names must be unique across all observables.
func NewCollector(cfg Config, observables ...Observable) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Collector{cfg: cfg, max: cfg.MaxSamples}
	if c.max == 0 {
		c.max = DefaultMaxSamples
	}
	seen := make(map[string]bool)
	for _, obs := range observables {
		if obs == nil {
			continue
		}
		for _, g := range obs.ProbeGauges() {
			if g.Name == "" || g.Read == nil {
				return nil, fmt.Errorf("probe: observable %T exposes an incomplete gauge %q", obs, g.Name)
			}
			if seen[g.Name] {
				return nil, fmt.Errorf("probe: duplicate gauge name %q", g.Name)
			}
			seen[g.Name] = true
			c.names = append(c.names, g.Name)
			c.gauges = append(c.gauges, g.Read)
		}
	}
	if len(c.gauges) == 0 {
		return nil, errors.New("probe: no gauges to sample")
	}
	if cfg.EveryEvents > 0 {
		c.nextEvent = cfg.EveryEvents
	}
	// With an Interval cadence, nextTime = 0 makes the first executed
	// event record the run's initial state.
	return c, nil
}

// Names returns the series column names. The slice is shared; callers
// must not mutate it.
func (c *Collector) Names() []string { return c.names }

// Observe is the kernel post-event hook: called after every executed
// event with the kernel's current virtual time and executed-event count.
// It records a sample when either cadence is due. Observe only reads
// simulation state — it never schedules, cancels, or mutates — so the
// event schedule of an observed run is identical to an unobserved one.
func (c *Collector) Observe(now simtime.Time, executed uint64) {
	due := false
	if c.cfg.EveryEvents > 0 && executed >= c.nextEvent {
		due = true
		c.nextEvent = executed + c.cfg.EveryEvents
	}
	if c.cfg.Interval > 0 && !now.Before(c.nextTime) {
		due = true
		// Advance past now so a burst of same-instant events yields one
		// sample, and a long delivery gap yields one sample, not a
		// backlog of catch-up rows. The next due instant is computed
		// arithmetically: stepping one interval per missed tick would cost
		// O(gap/Interval), and once Interval drops below the float ULP of
		// now the step stops advancing nextTime at all.
		k := math.Floor(float64(now)/c.cfg.Interval) + 1
		next := simtime.Time(k * c.cfg.Interval)
		if !now.Before(next) {
			// Interval is within rounding error of now's ULP; the smallest
			// representable instant after now keeps the cadence progressing.
			next = simtime.Time(math.Nextafter(float64(now), math.Inf(1)))
		}
		c.nextTime = next
	}
	if due {
		c.record(now, executed, false)
	}
}

// Final records one closing sample of the end-of-run state (unless the
// cadence already sampled at exactly this point) and freezes the
// collector. Engines call it once after the kernel drains or stops. The
// closing sample is exempt from the MaxSamples cap — a truncated series
// still ends with the end-of-run reading — so a series holds at most
// MaxSamples cadence rows plus one closing row.
func (c *Collector) Final(now simtime.Time, executed uint64) {
	if c.finalized {
		return
	}
	c.finalized = true
	if n := len(c.samples); n > 0 && c.samples[n-1].Event == executed && c.truncated == 0 {
		return
	}
	c.record(now, executed, true)
}

// record appends one sample (or, past the cap, counts it as truncated —
// unless it is the cap-exempt closing sample).
func (c *Collector) record(now simtime.Time, executed uint64, closing bool) {
	if len(c.samples) >= c.max && !closing {
		c.truncated++
		return
	}
	start := len(c.backing)
	for _, read := range c.gauges {
		c.backing = append(c.backing, read())
	}
	s := Sample{Time: float64(now), Event: executed, Values: c.backing[start:len(c.backing):len(c.backing)]}
	c.samples = append(c.samples, s)
	if c.cfg.Sink != nil {
		c.cfg.Sink(c.names, s)
	}
}

// Len returns the number of recorded samples so far.
func (c *Collector) Len() int { return len(c.samples) }

// Series returns the collected series. The returned struct shares the
// collector's storage; take it once, after Final.
func (c *Collector) Series() *Series {
	return &Series{Names: c.names, Samples: c.samples, Truncated: c.truncated}
}
