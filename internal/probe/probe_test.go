package probe

import (
	"reflect"
	"testing"

	"abenet/internal/simtime"
)

// fakeObs is a test observable over explicit gauges.
type fakeObs struct{ gauges []Gauge }

func (f fakeObs) ProbeGauges() []Gauge { return f.gauges }

func counterObs(name string, v *float64) fakeObs {
	return fakeObs{gauges: []Gauge{{Name: name, Read: func() float64 { return *v }}}}
}

// TestEveryEventsCadence pins the every-K semantics: the first sample lands
// on event K, then every K events after the event that sampled.
func TestEveryEventsCadence(t *testing.T) {
	v := 0.0
	c, err := NewCollector(Config{EveryEvents: 3}, counterObs("x", &v))
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 10; e++ {
		v = float64(e)
		c.Observe(simtime.Time(float64(e)), e)
	}
	s := c.Series()
	var events []uint64
	for _, smp := range s.Samples {
		events = append(events, smp.Event)
	}
	if want := []uint64{3, 6, 9}; !reflect.DeepEqual(events, want) {
		t.Fatalf("sampled events = %v, want %v", events, want)
	}
	if s.Samples[1].Values[0] != 6 {
		t.Fatalf("sample value = %g, want the gauge reading at event 6", s.Samples[1].Values[0])
	}
}

// TestIntervalCadence pins the virtual-time semantics: the first event
// samples the initial state, a same-instant burst yields one sample, and a
// long gap yields one catch-up sample (never a backlog).
func TestIntervalCadence(t *testing.T) {
	v := 0.0
	c, err := NewCollector(Config{Interval: 1}, counterObs("x", &v))
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0, 0.4, 1.0, 1.0, 1.0, 5.25, 5.3}
	for i, now := range times {
		c.Observe(simtime.Time(now), uint64(i+1))
	}
	var sampled []float64
	for _, smp := range c.Series().Samples {
		sampled = append(sampled, smp.Time)
	}
	// One sample at t=0 (initial state), one at the first event ≥ 1, one at
	// the first event ≥ 2 (which is 5.25 — the gap collapses to one row).
	if want := []float64{0, 1.0, 5.25}; !reflect.DeepEqual(sampled, want) {
		t.Fatalf("sampled times = %v, want %v", sampled, want)
	}
}

// TestBothCadences takes at most one sample per event even when both axes
// are due at once.
func TestBothCadences(t *testing.T) {
	v := 0.0
	c, err := NewCollector(Config{EveryEvents: 1, Interval: 0.5}, counterObs("x", &v))
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(simtime.Time(0), 1)
	c.Observe(simtime.Time(2), 2)
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want one sample per event", got)
	}
}

// TestFinalRecordsClosingSample pins Final: it appends the end-of-run state
// unless the cadence already sampled at that event, and is idempotent.
func TestFinalRecordsClosingSample(t *testing.T) {
	v := 0.0
	c, _ := NewCollector(Config{EveryEvents: 2}, counterObs("x", &v))
	c.Observe(simtime.Time(1), 1)
	c.Observe(simtime.Time(2), 2) // samples
	c.Observe(simtime.Time(3), 3)
	v = 42
	c.Final(simtime.Time(3.5), 3)
	c.Final(simtime.Time(9), 9) // idempotent: frozen after the first call
	s := c.Series()
	if len(s.Samples) != 2 {
		t.Fatalf("samples = %d, want cadence sample + closing sample", len(s.Samples))
	}
	last := s.Samples[len(s.Samples)-1]
	if last.Event != 3 || last.Values[0] != 42 {
		t.Fatalf("closing sample = %+v, want event 3 with the final reading", last)
	}

	// When the cadence already sampled the final event, Final adds nothing.
	c2, _ := NewCollector(Config{EveryEvents: 2}, counterObs("x", &v))
	c2.Observe(simtime.Time(1), 2)
	c2.Final(simtime.Time(1), 2)
	if c2.Len() != 1 {
		t.Fatalf("Final duplicated the last sample: %d rows", c2.Len())
	}
}

// TestTruncation pins the cap: stored cadence samples are a prefix and the
// overflow is counted, but the closing sample is cap-exempt so a truncated
// series still ends with the end-of-run state.
func TestTruncation(t *testing.T) {
	v := 0.0
	c, _ := NewCollector(Config{EveryEvents: 1, MaxSamples: 2}, counterObs("x", &v))
	for e := uint64(1); e <= 5; e++ {
		c.Observe(simtime.Time(float64(e)), e)
	}
	v = 7
	c.Final(simtime.Time(6), 6)
	s := c.Series()
	if len(s.Samples) != 3 || s.Truncated != 3 {
		t.Fatalf("samples/truncated = %d/%d, want 2 cadence rows + closing row / 3 dropped", len(s.Samples), s.Truncated)
	}
	if s.Samples[1].Event != 2 {
		t.Fatalf("stored samples are not the prefix: %+v", s.Samples)
	}
	if last := s.Samples[2]; last.Event != 6 || last.Values[0] != 7 {
		t.Fatalf("closing sample = %+v, want event 6 with the end-of-run reading", last)
	}
}

// TestTinyIntervalTerminates is a regression pin: advancing the interval
// cadence must be O(1), not one step per missed tick — an interval smaller
// than the float ULP of the current virtual time used to make the
// catch-up loop spin forever (nextTime.Add(step) == nextTime).
func TestTinyIntervalTerminates(t *testing.T) {
	v := 0.0
	c, err := NewCollector(Config{Interval: 1e-15}, counterObs("x", &v))
	if err != nil {
		t.Fatal(err)
	}
	// At t=8 the ULP of a float64 is ~8.9e-16 > 1e-15·(1-ε)… close enough
	// that k·interval can round back to t; at t=1e6 it certainly does.
	c.Observe(simtime.Time(8), 1)
	c.Observe(simtime.Time(1e6), 2)
	c.Observe(simtime.Time(1e6), 3) // same instant: cadence must have advanced past now
	if c.Len() != 2 {
		t.Fatalf("samples = %d, want one per distinct instant", c.Len())
	}
	if !c.nextTime.After(simtime.Time(1e6)) {
		t.Fatalf("nextTime = %v did not advance past now", c.nextTime)
	}
}

// TestSinkStreamsEverySample pins the live hook: every recorded sample
// reaches the sink with the shared names slice.
func TestSinkStreamsEverySample(t *testing.T) {
	v := 0.0
	var got []Sample
	cfg := Config{EveryEvents: 1, Sink: func(names []string, s Sample) {
		if len(names) != 1 || names[0] != "x" {
			t.Fatalf("sink names = %v", names)
		}
		got = append(got, Sample{Time: s.Time, Event: s.Event, Values: append([]float64(nil), s.Values...)})
	}}
	c, _ := NewCollector(cfg, counterObs("x", &v))
	for e := uint64(1); e <= 3; e++ {
		v = float64(e)
		c.Observe(simtime.Time(float64(e)), e)
	}
	c.Final(simtime.Time(4), 4)
	if len(got) != 4 {
		t.Fatalf("sink saw %d samples, want 4 (3 cadence + final)", len(got))
	}
	if got[2].Values[0] != 3 {
		t.Fatalf("sink values = %+v", got[2])
	}
}

// TestCollectorErrors pins the constructor and config errors.
func TestCollectorErrors(t *testing.T) {
	v := 0.0
	if _, err := NewCollector(Config{}, counterObs("x", &v)); err == nil {
		t.Error("config without a cadence accepted")
	}
	if _, err := NewCollector(Config{Interval: -1}, counterObs("x", &v)); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := NewCollector(Config{EveryEvents: 1, MaxSamples: -1}, counterObs("x", &v)); err == nil {
		t.Error("negative max_samples accepted")
	}
	if _, err := NewCollector(Config{EveryEvents: 1}); err == nil {
		t.Error("empty gauge set accepted")
	}
	if _, err := NewCollector(Config{EveryEvents: 1}, counterObs("x", &v), counterObs("x", &v)); err == nil {
		t.Error("duplicate gauge names accepted")
	}
	if _, err := NewCollector(Config{EveryEvents: 1}, fakeObs{gauges: []Gauge{{Name: "y"}}}); err == nil {
		t.Error("gauge without a reader accepted")
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config Validate = %v, want nil", err)
	}
}

// TestBackingSurvivesGrowth: samples recorded early stay valid after the
// flat backing slice reallocates many times.
func TestBackingSurvivesGrowth(t *testing.T) {
	v := 0.0
	c, _ := NewCollector(Config{EveryEvents: 1}, counterObs("x", &v))
	for e := uint64(1); e <= 1000; e++ {
		v = float64(e)
		c.Observe(simtime.Time(float64(e)), e)
	}
	s := c.Series()
	for i, smp := range s.Samples {
		if want := float64(i + 1); smp.Values[0] != want {
			t.Fatalf("sample %d reads %g after backing growth, want %g", i, smp.Values[0], want)
		}
	}
}
