package consensus

import (
	"reflect"
	"strings"
	"testing"

	"abenet/internal/byzantine"
	"abenet/internal/faults"
	"abenet/internal/rng"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

func base(n int) Config {
	return Config{Graph: topology.Complete(n), F: (n - 1) / 3, Seed: 1, Horizon: simtime.Time(10_000)}
}

// TestHonestConsensus: with no adversary every configuration must reach a
// unanimous, valid decision — across media, coins and initial assignments.
func TestHonestConsensus(t *testing.T) {
	for _, n := range []int{4, 8} {
		for _, bcastMode := range []bool{false, true} {
			for _, coin := range []Coin{CoinLocal, CoinCommon} {
				for _, init := range []InitKind{InitRandom, InitZeros, InitOnes, InitHalf} {
					cfg := base(n)
					cfg.LocalBroadcast = bcastMode
					cfg.Coin = coin
					cfg.Init = init
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("n=%d bcast=%v coin=%d init=%d: %v", n, bcastMode, coin, init, err)
					}
					if !res.Termination || !res.Agreement || !res.Validity {
						t.Fatalf("n=%d bcast=%v coin=%d init=%d: term=%v agree=%v valid=%v (violations %v)",
							n, bcastMode, coin, init, res.Termination, res.Agreement, res.Validity, res.Violations)
					}
					if init == InitZeros && res.Decision != 0 {
						t.Fatalf("unanimous-0 start decided %d", res.Decision)
					}
					if init == InitOnes && res.Decision != 1 {
						t.Fatalf("unanimous-1 start decided %d", res.Decision)
					}
					if res.Decided != n || res.Honest != n {
						t.Fatalf("decided %d/%d honest %d", res.Decided, n, res.Honest)
					}
				}
			}
		}
	}
}

// TestConsensusDeterminism: identical (Config, seed) must reproduce the
// whole Result, and different seeds must not be accidentally shared.
func TestConsensusDeterminism(t *testing.T) {
	cfg := base(8)
	cfg.Init = InitHalf
	cfg.Byzantine = byzantine.Equivocators(2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestConsensusToleratesEquivocatorsWithinBound: inside the classical
// Ben-Or guarantee region (n > 5f, here n=8 and f=1) one equivocator must
// not break safety, and under bounded expected delay the run terminates —
// on both media. (Pushing e to the f < n/3 edge is experiment E14's job:
// there point-to-point keeps safety but loses termination, which is the
// local-broadcast separation itself, not a unit-test invariant.)
func TestConsensusToleratesEquivocatorsWithinBound(t *testing.T) {
	for _, mode := range []bool{false, true} {
		cfg := base(8)
		cfg.F = 1
		cfg.LocalBroadcast = mode
		cfg.Init = InitHalf
		cfg.Byzantine = byzantine.Equivocators(1)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement || !res.Validity || !res.Termination {
			t.Fatalf("bcast=%v: term=%v agree=%v valid=%v violations=%v",
				mode, res.Termination, res.Agreement, res.Validity, res.Violations)
		}
		if res.Honest != 7 || res.Decided != 7 {
			t.Fatalf("bcast=%v: honest=%d decided=%d, want 7/7", mode, res.Honest, res.Decided)
		}
		tel := res.Faults.Byzantine
		if tel == nil {
			t.Fatalf("bcast=%v: no byzantine telemetry", mode)
		}
		if mode {
			// The radio medium defeats equivocation: substitutions count
			// as consistent corruptions instead.
			if tel.Equivocations != 0 || tel.Corruptions == 0 {
				t.Fatalf("broadcast telemetry = %+v, want corruptions only", tel)
			}
		} else if tel.Equivocations == 0 {
			t.Fatalf("p2p telemetry = %+v, want equivocations", tel)
		}
	}
}

// TestConsensusSurvivesCrashes: f crashed-from-start nodes are within the
// wait budget, so the survivors still decide.
func TestConsensusSurvivesCrashes(t *testing.T) {
	cfg := base(8) // f = 2
	cfg.Init = InitHalf
	cfg.MaxRounds = 50
	cfg.Faults = &faults.Plan{Events: []faults.Event{faults.CrashAt(0, 0), faults.CrashAt(0, 1)}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The crashed nodes are honest but can never decide: termination over
	// all honest nodes fails by definition, while every surviving node
	// must still decide safely.
	if res.Decided != 6 {
		t.Fatalf("decided = %d, want the 6 survivors (violations %v)", res.Decided, res.Violations)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("agreement=%v validity=%v violations=%v", res.Agreement, res.Validity, res.Violations)
	}
	if res.Termination {
		t.Fatal("termination should be false with permanently crashed honest nodes")
	}
}

// TestConsensusRejectsBadConfigs pins the constructor errors.
func TestConsensusRejectsBadConfigs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{"nil graph", Config{}, "needs a graph"},
		{"ring topology", Config{Graph: topology.Ring(8)}, "complete topology"},
		{"f too large", Config{Graph: topology.Complete(8), F: 3}, "3f < n"},
		{"negative f", Config{Graph: topology.Complete(8), F: -1}, "3f < n"},
		{"negative rounds", Config{Graph: topology.Complete(4), MaxRounds: -1}, "must be positive"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCorruptibleMsg pins the forgery surface: a corrupted message keeps
// phase and round (so it still parses) and claims a bit value.
func TestCorruptibleMsg(t *testing.T) {
	m := Msg{Phase: 2, Round: 7, Value: Unknown}
	var c any = m
	if _, ok := c.(byzantine.Corruptible); !ok {
		t.Fatal("Msg must implement byzantine.Corruptible")
	}
	forged := m.Corrupt(rng.New(42)).(Msg)
	if forged.Phase != 2 || forged.Round != 7 {
		t.Fatalf("forgery changed the envelope: %+v", forged)
	}
	if forged.Value != 0 && forged.Value != 1 {
		t.Fatalf("forged value %d, want a bit", forged.Value)
	}
	if m.Value != Unknown {
		t.Fatal("Corrupt mutated the original message")
	}
}
