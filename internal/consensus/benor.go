// Package consensus implements randomized binary consensus on the ABE
// kernel: Ben-Or's classic algorithm (PODC 1983) with a selectable coin —
// each node's private local coin, or a common-coin oracle shared by every
// node — running fully message-driven on the asynchronous network layer.
//
// The protocol proceeds in asynchronous rounds of two phases. In phase 1
// every node broadcasts its current estimate and waits for n−f phase-1
// values of its round (its own included); if more than (n+f)/2 of them
// agree on v it proposes v, otherwise it proposes ⊥. In phase 2 it
// broadcasts the proposal and again waits for n−f; seeing more than
// (n+f)/2 identical non-⊥ proposals it *decides* that value, seeing at
// least f+1 it *adopts* it as the next estimate, and otherwise it flips
// its coin. Deciders keep participating (their estimate is pinned to the
// decision) so laggards can catch up; the engine stops the network once
// every honest node has decided.
//
// Why it is here: the paper's bounded-*expected*-delay assumption (ABE
// Definition 1) is exactly the regime Ben-Or needs — rounds complete in
// expected-finite time because the n−f'th arrival has finite expectation —
// and the byzantine.Plan + local-broadcast machinery lets experiment E14
// measure the equivocation tolerance gap Khan & Vaidya prove: under
// point-to-point links safety needs f < n/3, under local broadcast the
// same adversary budget tolerates strictly more equivocators because the
// medium forces every lie to be consistent.
package consensus

import (
	"errors"
	"fmt"

	"abenet/internal/byzantine"
	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/core"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/network"
	"abenet/internal/probe"
	"abenet/internal/rng"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// The sentinel estimate/proposal values. Regular values are 0 and 1.
const (
	// Unknown is the ⊥ proposal: "no super-majority seen".
	Unknown int8 = -1
	// notReceived marks an empty slot in a round's tally table.
	notReceived int8 = -2
)

// Msg is one Ben-Or message: a phase-1 report of the sender's current
// estimate, or a phase-2 proposal (possibly Unknown).
type Msg struct {
	Phase int8  // 1 or 2
	Round int32 // 1-based asynchronous round number
	Value int8  // 0 or 1; phase-2 proposals may be Unknown
}

// Corrupt implements byzantine.Corruptible: a forged copy claims a random
// bit. For phase-2 proposals this can turn an honest ⊥ into a concrete
// value backed by no quorum — the most damaging single-message forgery
// available against Ben-Or's counting rules.
func (m Msg) Corrupt(r *rng.Source) any {
	m.Value = int8(r.Intn(2))
	return m
}

// Coin selects the randomness nodes fall back to when a round ends
// undecided.
type Coin int

const (
	// CoinLocal is Ben-Or's original private coin: each node flips its own.
	CoinLocal Coin = iota
	// CoinCommon is a common-coin oracle: every node's flip for round r
	// yields the same bit (a pure function of the run seed and r),
	// modelling a shared-coin primitive without implementing one.
	CoinCommon
)

// InitKind selects the deterministic assignment of initial values.
type InitKind int

const (
	// InitRandom assigns each node an independent random bit (from a
	// dedicated stream, so the assignment never perturbs protocol
	// randomness).
	InitRandom InitKind = iota
	// InitZeros starts every node at 0 (unanimity: validity is testable).
	InitZeros
	// InitOnes starts every node at 1.
	InitOnes
	// InitHalf starts the lower half of the ring at 0 and the upper half
	// at 1 — a maximally split start that exercises the coin.
	InitHalf
)

// Config describes one consensus run.
type Config struct {
	// Graph must be a complete topology: Ben-Or's counting rules assume
	// every node hears every node. Required.
	Graph *topology.Graph
	// F is the number of adversarial nodes the protocol is provisioned to
	// tolerate: nodes wait for n−F values per phase. Must satisfy 3F < n
	// (larger F makes the phase-1 super-majority unreachable). The actual
	// byzantine.Plan may assign more roles than F — that is how an
	// experiment probes past the tolerance bound.
	F int
	// Init selects the initial-value assignment.
	Init InitKind
	// Coin selects the fallback coin.
	Coin Coin
	// MaxRounds caps the asynchronous round number; a node reaching it
	// halts (undecided unless it decided earlier). 0 means 200.
	MaxRounds int
	// Delay is the per-link (or per-transmission, under LocalBroadcast)
	// delay distribution. Nil means Exponential(1).
	Delay dist.Dist
	// Links optionally overrides Delay with a full link factory in
	// point-to-point mode. Must be nil under LocalBroadcast.
	Links channel.Factory
	// LocalBroadcast switches the medium to atomic local broadcast.
	LocalBroadcast bool
	// Clocks is the local clock model; nil means perfect clocks. The
	// protocol is purely message-driven, so clocks only affect processing
	// timing when Processing is set.
	Clocks clock.Model
	// Processing is the per-event processing-time model; nil means
	// instantaneous.
	Processing dist.Dist
	// Seed determines the whole run.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation ("heap",
	// "calendar"); empty means the default heap. Byte-identical either way.
	Scheduler string
	// Horizon bounds virtual time; 0 means unbounded.
	Horizon simtime.Time
	// MaxEvents bounds the event count; 0 means 50e6.
	MaxEvents uint64
	// Tracer optionally observes the run.
	Tracer network.Tracer
	// Faults optionally injects crash/loss/partition faults.
	Faults *faults.Plan
	// Byzantine optionally assigns adversarial roles.
	Byzantine *byzantine.Plan
	// Observe optionally samples a time series during the run (see
	// internal/probe); sampling never perturbs the schedule. Nil disables
	// collection.
	Observe *probe.Config
}

// Result is the outcome of one consensus run. Agreement and Validity are
// judged over honest nodes only (nodes holding no Byzantine role): the
// classic properties say nothing about what liars output.
type Result struct {
	N, F    int
	Honest  int // number of honest nodes
	Decided int // honest nodes that decided
	// Decision is the unanimous honest decision, or -1 when no honest node
	// decided or honest deciders disagree.
	Decision int
	// Agreement: no two honest nodes decided different values.
	Agreement bool
	// Validity: if every honest node started with the same value v, every
	// honest decision is v (vacuously true on split starts).
	Validity bool
	// Termination: every honest node decided.
	Termination bool
	// Violations describes any agreement/validity breach, for Report.
	Violations []string
	// Rounds is the highest round reached by an honest node.
	Rounds int
	// DecisionRound is the highest round at which an honest node decided
	// (0 when none did).
	DecisionRound int
	// CoinFlips counts coin flips across honest nodes.
	CoinFlips int
	// Ignored counts malformed payloads dropped by honest nodes.
	Ignored int
	// InitialValues is the assignment the run started from.
	InitialValues []int8
	Metrics       network.Metrics
	Time          float64
	// Events is the number of kernel events the run executed (a batch of
	// same-instant deliveries counts as one event).
	Events    uint64
	StopCause string
	Params    core.Params
	Faults    *faults.Telemetry
	// Series is the sampled time series, nil without an observe config.
	Series *probe.Series
}

// benorProbe exposes the protocol-level gauges of a Ben-Or run: round and
// phase progress across the live node instances and the count of honest
// deciders (tracked at the engine so it survives churn restarts).
type benorProbe struct {
	nodes   []*node
	decided *int
}

// ProbeGauges implements probe.Observable.
func (p benorProbe) ProbeGauges() []probe.Gauge {
	return []probe.Gauge{
		{Name: "round_max", Read: func() float64 {
			max := int32(0)
			for _, nd := range p.nodes {
				if nd != nil && nd.round > max {
					max = nd.round
				}
			}
			return float64(max)
		}},
		{Name: "round_min", Read: func() float64 {
			min := int32(0)
			first := true
			for _, nd := range p.nodes {
				if nd == nil {
					continue
				}
				if first || nd.round < min {
					min = nd.round
					first = false
				}
			}
			return float64(min)
		}},
		// lead_phase is the phase of the node at the (round, phase)
		// frontier — the lexicographically greatest progress point — not
		// the maximum phase over all nodes: a node at (round 5, phase 0)
		// leads one at (round 4, phase 1), so the gauge reads 0.
		{Name: "lead_phase", Read: func() float64 {
			var round int32
			var phase int8
			for _, nd := range p.nodes {
				if nd == nil {
					continue
				}
				if nd.round > round || (nd.round == round && nd.phase > phase) {
					round, phase = nd.round, nd.phase
				}
			}
			return float64(phase)
		}},
		{Name: "decided", Read: func() float64 { return float64(*p.decided) }},
	}
}

// Run executes one consensus instance.
func Run(cfg Config) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, errors.New("consensus: config needs a graph")
	}
	n := cfg.Graph.N()
	for u := 0; u < n; u++ {
		if cfg.Graph.OutDegree(u) != n-1 || len(cfg.Graph.In(u)) != n-1 {
			return Result{}, fmt.Errorf("consensus: ben-or requires a complete topology; node %d has degree %d/%d, want %d/%d",
				u, cfg.Graph.OutDegree(u), len(cfg.Graph.In(u)), n-1, n-1)
		}
	}
	if cfg.F < 0 || 3*cfg.F >= n {
		return Result{}, fmt.Errorf("consensus: f = %d must satisfy 0 <= 3f < n (n = %d): beyond it the phase-1 super-majority is unreachable", cfg.F, n)
	}
	if cfg.LocalBroadcast && cfg.Links != nil {
		return Result{}, errors.New("consensus: Links and LocalBroadcast are mutually exclusive")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 200
	}
	if maxRounds < 1 {
		return Result{}, fmt.Errorf("consensus: MaxRounds = %d must be positive", cfg.MaxRounds)
	}
	delay := cfg.Delay
	if delay == nil {
		delay = dist.NewExponential(1)
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = simtime.Forever
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}

	// Initial values and the common coin come from dedicated streams of
	// the run root, so neither perturbs the network's node/edge/clock
	// streams (nor each other).
	setup := rng.New(cfg.Seed)
	initial := initialValues(cfg.Init, n, setup.Derive("consensus/init"))
	coinSeed := setup.Derive("consensus/coin").Uint64()

	honest := make([]bool, n)
	honestCount := 0
	for i := 0; i < n; i++ {
		honest[i] = !cfg.Byzantine.IsAdversary(i)
		if honest[i] {
			honestCount++
		}
	}

	// Decisions are recorded at the engine so they survive churn restarts
	// and network teardown; the run stops as soon as the last honest node
	// decides.
	decisions := make([]int8, n)
	decisionRounds := make([]int32, n)
	for i := range decisions {
		decisions[i] = notReceived
	}
	decidedHonest := 0
	var netw *network.Network
	onDecide := func(id int, v int8, round int32) {
		if decisions[id] != notReceived {
			return // a churn-restarted incarnation re-deciding
		}
		decisions[id] = v
		decisionRounds[id] = round
		if honest[id] {
			decidedHonest++
			if decidedHonest == honestCount {
				netw.Kernel().Stop("consensus: every honest node decided")
			}
		}
	}

	nodes := make([]*node, n)
	makeNode := func(i int) network.Node {
		nodes[i] = &node{
			id: i, n: n, f: cfg.F,
			est:       initial[i],
			coin:      cfg.Coin,
			coinSeed:  coinSeed,
			maxRounds: int32(maxRounds),
			onDecide:  onDecide,
		}
		return nodes[i]
	}
	net, err := network.New(network.Config{
		Graph:          cfg.Graph,
		Links:          p2pLinks(cfg, delay),
		LocalBroadcast: cfg.LocalBroadcast,
		BroadcastDelay: broadcastDelay(cfg, delay),
		Clocks:         cfg.Clocks,
		Processing:     cfg.Processing,
		Seed:           cfg.Seed,
		Scheduler:      cfg.Scheduler,
		Tracer:         cfg.Tracer,
		Faults:         cfg.Faults,
		Byzantine:      cfg.Byzantine,
	}, makeNode)
	if err != nil {
		return Result{}, fmt.Errorf("consensus: %w", err)
	}
	netw = net
	var collector *probe.Collector
	if cfg.Observe != nil {
		collector, err = probe.NewCollector(*cfg.Observe, net, benorProbe{nodes: nodes, decided: &decidedHonest})
		if err != nil {
			return Result{}, fmt.Errorf("consensus: %w", err)
		}
		net.InstallProbe(collector)
	}
	if err := net.Run(horizon, maxEvents); err != nil {
		return Result{}, fmt.Errorf("consensus: %w", err)
	}

	res := Result{
		N: n, F: cfg.F,
		Honest:        honestCount,
		Decision:      -1,
		InitialValues: initial,
		Metrics:       net.Metrics(),
		Time:          float64(net.Now()),
		Events:        net.Kernel().Executed(),
		StopCause:     net.StopCause(),
		Params:        core.ParamsOf(net),
		Faults:        net.FaultTelemetry(),
	}
	if collector != nil {
		collector.Final(net.Now(), net.Kernel().Executed())
		res.Series = collector.Series()
	}
	return judge(res, net, honest, decisions, decisionRounds), nil
}

// p2pLinks resolves the link factory for point-to-point mode (nil under
// local broadcast — the network wires radio links instead).
func p2pLinks(cfg Config, delay dist.Dist) channel.Factory {
	if cfg.LocalBroadcast {
		return nil
	}
	if cfg.Links != nil {
		return cfg.Links
	}
	return channel.RandomDelayFactory(delay)
}

// broadcastDelay resolves the radio delay for local-broadcast mode.
func broadcastDelay(cfg Config, delay dist.Dist) dist.Dist {
	if !cfg.LocalBroadcast {
		return nil
	}
	return delay
}

// initialValues builds the deterministic initial assignment.
func initialValues(kind InitKind, n int, r *rng.Source) []int8 {
	initial := make([]int8, n)
	for i := range initial {
		switch kind {
		case InitZeros:
			initial[i] = 0
		case InitOnes:
			initial[i] = 1
		case InitHalf:
			if i >= n/2 {
				initial[i] = 1
			}
		default:
			initial[i] = int8(r.Intn(2))
		}
	}
	return initial
}

// judge fills the outcome fields from the engine-level decision record and
// the surviving node instances.
func judge(res Result, net *network.Network, honest []bool, decisions []int8, decisionRounds []int32) Result {
	n := len(honest)
	unanimous := true
	var initRef int8
	first := true
	for i := 0; i < n; i++ {
		if !honest[i] {
			continue
		}
		if first {
			initRef = res.InitialValues[i]
			first = false
		} else if res.InitialValues[i] != initRef {
			unanimous = false
		}
	}

	res.Agreement = true
	res.Validity = true
	decision := int8(notReceived)
	for i := 0; i < n; i++ {
		if nd, ok := net.NodeAt(i).(*node); ok && honest[i] {
			if int(nd.round) > res.Rounds {
				res.Rounds = int(nd.round)
			}
			res.CoinFlips += nd.coinFlips
			res.Ignored += nd.ignored
		}
		if !honest[i] || decisions[i] == notReceived {
			continue
		}
		res.Decided++
		if int(decisionRounds[i]) > res.DecisionRound {
			res.DecisionRound = int(decisionRounds[i])
		}
		if decision == notReceived {
			decision = decisions[i]
		} else if decisions[i] != decision && res.Agreement {
			res.Agreement = false
			res.Violations = append(res.Violations,
				fmt.Sprintf("agreement violated: honest nodes decided both %d and %d", decision, decisions[i]))
		}
		if unanimous && decisions[i] != initRef {
			res.Validity = false
			res.Violations = append(res.Violations,
				fmt.Sprintf("validity violated: every honest node started with %d but node %d decided %d", initRef, i, decisions[i]))
		}
	}
	res.Termination = res.Decided == res.Honest
	if res.Agreement && decision != notReceived {
		res.Decision = int(decision)
	}
	return res
}

// node is one Ben-Or protocol instance. Per-round tallies live in n-slot
// tables (in-ports 0..n−2 for the other nodes, slot n−1 for the node's own
// value); future-round messages buffer in the same maps and completed
// rounds are deleted, so memory stays bounded by the in-flight round span.
type node struct {
	id, n, f  int
	est       int8
	round     int32
	phase     int8
	decided   bool
	decision  int8
	halted    bool
	coin      Coin
	coinSeed  uint64
	coinFlips int
	ignored   int
	maxRounds int32

	reports   map[int32][]int8 // phase-1 values per round
	proposals map[int32][]int8 // phase-2 proposals per round
	reportN   map[int32]int
	proposalN map[int32]int

	onDecide func(id int, v int8, round int32)
}

var _ network.Node = (*node)(nil)

// Init implements network.Node.
func (nd *node) Init(ctx *network.Context) {
	nd.reports = make(map[int32][]int8)
	nd.proposals = make(map[int32][]int8)
	nd.reportN = make(map[int32]int)
	nd.proposalN = make(map[int32]int)
	nd.round = 1
	nd.phase = 1
	nd.record(nd.reports, nd.reportN, 1, nd.n-1, nd.est)
	ctx.Broadcast(Msg{Phase: 1, Round: 1, Value: nd.est})
	nd.advance(ctx)
}

// OnMessage implements network.Node. Malformed payloads — wrong type,
// out-of-range phase/round/value — are counted and dropped rather than
// trusted: an adversary must not crash an honest node.
func (nd *node) OnMessage(ctx *network.Context, inPort int, payload any) {
	if nd.halted {
		return
	}
	m, ok := payload.(Msg)
	if !ok {
		nd.ignored++
		return
	}
	if m.Round < 1 || m.Round > nd.maxRounds {
		nd.ignored++
		return
	}
	switch m.Phase {
	case 1:
		if m.Value != 0 && m.Value != 1 {
			nd.ignored++
			return
		}
		nd.record(nd.reports, nd.reportN, m.Round, inPort, m.Value)
	case 2:
		if m.Value != 0 && m.Value != 1 && m.Value != Unknown {
			nd.ignored++
			return
		}
		nd.record(nd.proposals, nd.proposalN, m.Round, inPort, m.Value)
	default:
		nd.ignored++
		return
	}
	nd.advance(ctx)
}

// OnTimer implements network.Node: the protocol is purely message-driven.
func (nd *node) OnTimer(ctx *network.Context, kind int) {}

// record stores the first value per (table, round, slot); duplicates (from
// fault-plan duplication) are ignored. It reports whether the slot was new.
func (nd *node) record(m map[int32][]int8, counts map[int32]int, round int32, slot int, v int8) bool {
	t := m[round]
	if t == nil {
		t = make([]int8, nd.n)
		for i := range t {
			t[i] = notReceived
		}
		m[round] = t
	}
	if t[slot] != notReceived {
		return false
	}
	t[slot] = v
	counts[round]++
	return true
}

// advance runs the state machine as far as buffered messages allow —
// possibly several phases, when future-round traffic arrived early.
func (nd *node) advance(ctx *network.Context) {
	for !nd.halted {
		switch {
		case nd.phase == 1 && nd.reportN[nd.round] >= nd.n-nd.f:
			c0, c1 := tally(nd.reports[nd.round])
			prop := Unknown
			if 2*c0 > nd.n+nd.f {
				prop = 0
			} else if 2*c1 > nd.n+nd.f {
				prop = 1
			}
			nd.phase = 2
			nd.record(nd.proposals, nd.proposalN, nd.round, nd.n-1, prop)
			ctx.Broadcast(Msg{Phase: 2, Round: nd.round, Value: prop})

		case nd.phase == 2 && nd.proposalN[nd.round] >= nd.n-nd.f:
			c0, c1 := tally(nd.proposals[nd.round])
			if 2*c0 > nd.n+nd.f {
				nd.decide(0)
			} else if 2*c1 > nd.n+nd.f {
				nd.decide(1)
			}
			switch {
			case nd.decided:
				nd.est = nd.decision // pinned: deciders keep relaying
			case c0 >= nd.f+1 && c0 >= c1:
				nd.est = 0
			case c1 >= nd.f+1:
				nd.est = 1
			default:
				nd.est = nd.coinFlip(ctx)
			}
			delete(nd.reports, nd.round)
			delete(nd.proposals, nd.round)
			delete(nd.reportN, nd.round)
			delete(nd.proposalN, nd.round)
			if nd.round >= nd.maxRounds {
				nd.halted = true
				return
			}
			nd.round++
			nd.phase = 1
			nd.record(nd.reports, nd.reportN, nd.round, nd.n-1, nd.est)
			ctx.Broadcast(Msg{Phase: 1, Round: nd.round, Value: nd.est})

		default:
			return
		}
	}
}

// decide locks in v (idempotent: the first decision wins).
func (nd *node) decide(v int8) {
	if nd.decided {
		return
	}
	nd.decided = true
	nd.decision = v
	nd.onDecide(nd.id, v, nd.round)
}

// coinFlip returns the round's fallback bit. The common coin is a pure
// function of (coin seed, round), so every node flipping in round r sees
// the same bit regardless of when it flips.
func (nd *node) coinFlip(ctx *network.Context) int8 {
	nd.coinFlips++
	if nd.coin == CoinCommon {
		return int8(rng.New(nd.coinSeed).DeriveIndexed("round", int(nd.round)).Uint64() & 1)
	}
	return int8(ctx.Rand().Intn(2))
}

// tally counts the 0s and 1s in a round table (Unknown and empty slots
// count as neither).
func tally(t []int8) (c0, c1 int) {
	for _, v := range t {
		switch v {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	return c0, c1
}
