// Package runner is the unified entry point of the library: one Env type
// stating the ABE environment of Definition 1 once, one Protocol interface
// with per-protocol option structs, one Report shape for every run, and a
// name-keyed registry so tools and experiment harnesses can sweep any
// (protocol × environment) pair generically.
//
// The environment and the protocol are deliberately separated, following
// the paper's own structure: Definition 1 defines the *network* (δ on the
// expected delay, [s_low, s_high] on clock speeds, γ on processing time)
// independently of the *algorithm* run on it. Before this package each
// entry point re-declared its own slice of the environment; now
//
//	rep, err := runner.Run(env, proto)
//
// is the single door, and the facade's historical Run* functions are thin
// deprecated shims over it.
package runner

import (
	"errors"
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// Env states the ABE environment (Definition 1) plus the run bounds, once,
// for every protocol. The zero value of every field selects the canonical
// experimental setting: a unidirectional ring, exponential delays with
// δ = 1, perfect clocks, instantaneous processing.
type Env struct {
	// Graph is the communication topology. Nil means topology.Ring(N).
	// Ring-based protocols accept any graph embedding a directed
	// Hamiltonian cycle (BiRing, Complete, Hypercube, ...): messages
	// travel along the embedded cycle and the other edges stay silent.
	Graph *topology.Graph
	// N is the network size, used when Graph is nil. When Graph is set,
	// N must be 0 or equal to the graph's size.
	N int
	// Delay is the per-link message delay distribution — condition 1's δ
	// is its mean. Nil means Exponential(1).
	Delay dist.Dist
	// Links optionally overrides Delay with a full link factory (ARQ,
	// FIFO, heterogeneous). When set, Delay is ignored by protocols that
	// honour Links; protocols with a fixed channel discipline document
	// their behaviour.
	Links channel.Factory
	// Delta optionally declares the bound on the expected link delay (the
	// paper's δ), used to derive balanced protocol defaults (Election's
	// A0, ClockSync's period). Link factories expose no mean before the
	// network is built, so environments using Links should declare Delta;
	// 0 means derive δ from Delay's exact mean (or 1 for link factories).
	Delta float64
	// Clocks is the local clock model — condition 2's [s_low, s_high].
	// Nil means perfect clocks.
	Clocks clock.Model
	// Processing is the event-processing time model — condition 3's γ.
	// Nil means instantaneous processing.
	Processing dist.Dist
	// Seed determines the whole run.
	Seed uint64
	// Horizon bounds virtual time for event-driven protocols; 0 means
	// unbounded.
	Horizon simtime.Time
	// MaxEvents bounds the number of simulation events for event-driven
	// protocols; 0 means each protocol's livelock-guard default (50e6).
	MaxEvents uint64
	// MaxRounds bounds round-based protocols (synchronous engines and
	// synchronizers); 0 means each protocol's default.
	MaxRounds int
	// Tracer optionally observes event-driven runs; nil disables tracing.
	// Honoured by Election, ItaiRodehAsync, ChangRoberts and Peterson;
	// the round-engine and synchronizer protocols have no event stream to
	// trace and ignore it.
	Tracer network.Tracer
}

// size returns the network size the environment describes.
func (e Env) size() (int, error) {
	if e.Graph != nil {
		n := e.Graph.N()
		if e.N != 0 && e.N != n {
			return 0, fmt.Errorf("runner: env.N = %d disagrees with graph size %d", e.N, n)
		}
		return n, nil
	}
	if e.N < 2 {
		return 0, fmt.Errorf("runner: env needs N >= 2 (or a Graph), got N = %d", e.N)
	}
	return e.N, nil
}

// graph returns the concrete topology (building the default ring).
func (e Env) graph() (*topology.Graph, error) {
	if e.Graph != nil {
		return e.Graph, nil
	}
	n, err := e.size()
	if err != nil {
		return nil, err
	}
	return topology.Ring(n), nil
}

// linkFactory resolves Links/Delay into a link factory with the given
// default discipline applied to the delay distribution.
func (e Env) linkFactory(wrap func(dist.Dist) channel.Factory) channel.Factory {
	if e.Links != nil {
		return e.Links
	}
	return wrap(e.delay())
}

// delay returns the delay distribution (defaulting to Exponential(1)).
func (e Env) delay() dist.Dist {
	if e.Delay != nil {
		return e.Delay
	}
	return dist.NewExponential(1)
}

// meanDelay returns the best-known δ of the environment: the declared
// Delta if any, else the delay distribution's mean, else 1 when only a
// link factory is given (factories do not expose a mean before the
// network is built).
func (e Env) meanDelay() float64 {
	if e.Delta > 0 {
		return e.Delta
	}
	if e.Links != nil {
		return 1
	}
	return e.delay().Mean()
}

// Protocol is a runnable protocol: an algorithm plus its options, bound to
// an environment only at Run time. Implementations are option structs
// (Election, ItaiRodehSync, ChangRoberts, ...) whose zero values select
// balanced defaults, so every registry entry is runnable as-is.
type Protocol interface {
	// Name is the registry key (stable, kebab-case).
	Name() string
	// Run executes the protocol on env. Implementations fill every Report
	// field they can and put protocol-specific measurements in Extra.
	Run(env Env) (Report, error)
}

// Run executes protocol p on environment env: the single entry point every
// facade function, tool and sweep goes through. The environment's size
// invariants (N >= 2 or a Graph; N matching the graph when both are set)
// are checked here so every protocol rejects an invalid Env identically.
func Run(env Env, p Protocol) (Report, error) {
	if p == nil {
		return Report{}, errors.New("runner: nil protocol")
	}
	if _, err := env.size(); err != nil {
		return Report{}, err
	}
	rep, err := p.Run(env)
	if err != nil {
		return Report{}, err
	}
	rep.Protocol = p.Name()
	return rep, nil
}
