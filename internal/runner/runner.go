// Package runner is the unified entry point of the library: one Env type
// stating the ABE environment of Definition 1 once, one Protocol interface
// with per-protocol option structs, one Report shape for every run, and a
// name-keyed registry so tools and experiment harnesses can sweep any
// (protocol × environment) pair generically.
//
// The environment and the protocol are deliberately separated, following
// the paper's own structure: Definition 1 defines the *network* (δ on the
// expected delay, [s_low, s_high] on clock speeds, γ on processing time)
// independently of the *algorithm* run on it. Before this package each
// entry point re-declared its own slice of the environment; now
//
//	rep, err := runner.Run(env, proto)
//
// is the single door, and the facade's historical Run* functions are thin
// deprecated shims over it.
package runner

import (
	"errors"
	"fmt"
	"math"

	"abenet/internal/byzantine"
	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/network"
	"abenet/internal/probe"
	"abenet/internal/sim"
	"abenet/internal/simtime"
	"abenet/internal/topology"
	"abenet/internal/trace"
)

// Env states the ABE environment (Definition 1) plus the run bounds, once,
// for every protocol. The zero value of every field selects the canonical
// experimental setting: a unidirectional ring, exponential delays with
// δ = 1, perfect clocks, instantaneous processing.
type Env struct {
	// Graph is the communication topology. Nil means topology.Ring(N).
	// Ring-based protocols accept any graph embedding a directed
	// Hamiltonian cycle (BiRing, Complete, Hypercube, ...): messages
	// travel along the embedded cycle and the other edges stay silent.
	Graph *topology.Graph
	// N is the network size, used when Graph is nil. When Graph is set,
	// N must be 0 or equal to the graph's size.
	N int
	// Delay is the per-link message delay distribution — condition 1's δ
	// is its mean. Nil means Exponential(1).
	Delay dist.Dist
	// Links optionally overrides Delay with a full link factory (ARQ,
	// FIFO, heterogeneous). When set, Delay is ignored by protocols that
	// honour Links; protocols with a fixed channel discipline document
	// their behaviour.
	Links channel.Factory
	// Delta optionally declares the bound on the expected link delay (the
	// paper's δ), used to derive balanced protocol defaults (Election's
	// A0, ClockSync's period). Link factories expose no mean before the
	// network is built, so environments using Links should declare Delta;
	// 0 means derive δ from Delay's exact mean (or 1 for link factories).
	Delta float64
	// Clocks is the local clock model — condition 2's [s_low, s_high].
	// Nil means perfect clocks.
	Clocks clock.Model
	// Processing is the event-processing time model — condition 3's γ.
	// Nil means instantaneous processing.
	Processing dist.Dist
	// Seed determines the whole run.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation by name:
	// sim.SchedulerHeap (the default 4-ary heap) or sim.SchedulerCalendar
	// (a calendar queue with O(1) amortised operations, built for
	// million-node runs). Empty means the heap. Every scheduler implements
	// the same (time, seq) total order, so a run is byte-identical across
	// choices — this is a performance knob, never a semantics knob, and it
	// is therefore excluded from spec hashes. Protocols without a kernel
	// (the round engines and the live runtime) ignore it.
	Scheduler string
	// Horizon bounds virtual time for event-driven protocols; 0 means
	// unbounded.
	Horizon simtime.Time
	// MaxEvents bounds the number of simulation events for event-driven
	// protocols; 0 means each protocol's livelock-guard default (50e6).
	MaxEvents uint64
	// MaxRounds bounds round-based protocols (synchronous engines and
	// synchronizers); 0 means each protocol's default.
	MaxRounds int
	// Tracer optionally observes event-driven runs; nil disables tracing.
	// Honoured by Election, ItaiRodehAsync, ChangRoberts and Peterson;
	// the round-engine and synchronizer protocols have no event stream to
	// trace and ignore it.
	Tracer network.Tracer
	// Faults optionally injects deterministic message faults, node churn
	// and link outages (see internal/faults). Honoured by the event-driven
	// network protocols Election, ChangRoberts and ItaiRodehAsync (whose
	// FIFO assumption tolerates loss and duplication but not Reorder —
	// reordering an Itai–Rodeh ring measures an assumption violation, not
	// a robustness property). The remaining protocols, including Peterson
	// (whose step protocol hard-fails on any gap), reject a non-nil plan
	// rather than silently running fault-free. Nil keeps every run
	// byte-identical to a fault-free build. Plans with message loss can
	// deadlock a protocol, so pair them with a finite Horizon.
	Faults *faults.Plan
	// Byzantine optionally assigns adversarial per-node roles —
	// equivocation, omission, corruption, stalling (see internal/byzantine).
	// Honoured by ben-or; every other protocol rejects a non-nil plan with
	// ErrByzantineUnsupported rather than reporting honest numbers as
	// adversarial measurements. Nil keeps every run byte-identical to an
	// adversary-free build.
	Byzantine *byzantine.Plan
	// LocalBroadcast switches the medium from per-edge point-to-point
	// links to atomic local broadcast: one send per transmission,
	// delivered identically to every neighbour at one instant (Khan &
	// Vaidya's radio model, under which equivocation is physically
	// impossible). Honoured by ben-or; every other protocol rejects it
	// with ErrBroadcastUnsupported. Incompatible with Links and with
	// per-message link faults (Loss/Duplicate/Reorder).
	LocalBroadcast bool
	// Observe optionally samples a named time series during the run (see
	// internal/probe): network gauges plus per-protocol gauges, collected
	// off the kernel's post-event hook so the run stays byte-identical to
	// an unobserved one. Honoured by the event-driven network protocols
	// (election, chang-roberts, itai-rodeh-async, peterson, ben-or); the
	// round-engine and synchronizer protocols have no event stream to
	// sample and reject a non-nil config with ErrObserveUnsupported. The
	// collected series lands in Report.Series and never changes any other
	// Report field.
	Observe *probe.Config
	// Trace optionally records a causal event trace of the run (see
	// internal/trace): every send, delivery, timer and the terminal
	// decision gets a stable ID, a Lamport clock and an exact
	// happens-before parent, capped at Trace.MaxEvents with counted
	// truncation. Honoured by the same event-driven network protocols as
	// Observe (election, chang-roberts, itai-rodeh-async, peterson,
	// ben-or); other protocols reject a non-nil config with
	// ErrTraceUnsupported. The exported trace lands in Report.Trace and —
	// like Series — never changes any other Report field: a traced run is
	// byte-identical to an untraced one. Mutually exclusive with a
	// caller-supplied Tracer (Run installs its own recorder).
	Trace *trace.Config
}

// The structured environment-validation errors. Env.Validate wraps each
// in context, so callers can classify failures with errors.Is.
var (
	// ErrEnvSize: the environment describes no valid network size (N < 2
	// without a Graph, or N disagreeing with the Graph's size).
	ErrEnvSize = errors.New("runner: invalid network size")
	// ErrEnvDelta: the declared δ is negative or not finite.
	ErrEnvDelta = errors.New("runner: invalid Delta")
	// ErrEnvAmbiguousDelay: Links and Delay are both set but no Delta
	// declares which mean parameterises the protocol defaults.
	ErrEnvAmbiguousDelay = errors.New("runner: ambiguous delay declaration")
	// ErrEnvFaults: the fault plan fails faults.Plan.Validate.
	ErrEnvFaults = errors.New("runner: invalid fault plan")
	// ErrEnvByzantine: the Byzantine plan fails byzantine.Plan.Validate.
	ErrEnvByzantine = errors.New("runner: invalid byzantine plan")
	// ErrEnvBroadcast: LocalBroadcast conflicts with the rest of the
	// environment (a Links factory, or per-message link faults — neither
	// composes with the radio medium).
	ErrEnvBroadcast = errors.New("runner: invalid local-broadcast environment")
	// ErrEnvObserve: the observe config fails probe.Config.Validate.
	ErrEnvObserve = errors.New("runner: invalid observe config")
	// ErrEnvTrace: the trace config fails trace.Config.Validate, or Trace
	// and a caller-supplied Tracer are both set.
	ErrEnvTrace = errors.New("runner: invalid trace config")
	// ErrEnvScheduler: Env.Scheduler names no registered kernel scheduler.
	ErrEnvScheduler = errors.New("runner: unknown scheduler")
)

// The structured capability-rejection errors: a protocol that cannot
// honour an adversarial environment refuses to run rather than silently
// reporting honest numbers. Classify with errors.Is.
var (
	// ErrByzantineUnsupported: the protocol ignores Env.Byzantine.
	ErrByzantineUnsupported = errors.New("runner: protocol does not support byzantine adversaries")
	// ErrBroadcastUnsupported: the protocol runs on point-to-point links
	// only and ignores Env.LocalBroadcast.
	ErrBroadcastUnsupported = errors.New("runner: protocol does not support the local-broadcast medium")
	// ErrObserveUnsupported: the protocol has no event stream to sample
	// and ignores Env.Observe.
	ErrObserveUnsupported = errors.New("runner: protocol does not support time-series observation")
	// ErrTraceUnsupported: the protocol has no event stream to trace and
	// ignores Env.Trace.
	ErrTraceUnsupported = errors.New("runner: protocol does not support causal tracing")
)

// Validate checks the environment's internal consistency and returns a
// structured error (wrapping one of the ErrEnv* sentinels) describing the
// first violation, or nil. Run calls it, so every protocol rejects an
// invalid Env identically instead of each engine re-checking a slice of
// the rules.
func (e Env) Validate() error {
	n, err := e.size()
	if err != nil {
		return err
	}
	if e.Delta < 0 || math.IsNaN(e.Delta) || math.IsInf(e.Delta, 0) {
		return fmt.Errorf("%w: Delta = %g must be a non-negative finite bound on the expected delay", ErrEnvDelta, e.Delta)
	}
	if e.Links != nil && e.Delay != nil && e.Delta == 0 {
		return fmt.Errorf("%w: both Links and Delay are set; declare Delta to state which mean parameterises the protocol defaults (Links wins at run time)", ErrEnvAmbiguousDelay)
	}
	if !sim.ValidScheduler(e.Scheduler) {
		return fmt.Errorf("%w: %q (valid: %v, or empty for the default)", ErrEnvScheduler, e.Scheduler, sim.SchedulerNames())
	}
	if err := e.Faults.Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrEnvFaults, err)
	}
	if err := e.Byzantine.Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrEnvByzantine, err)
	}
	if err := e.Observe.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrEnvObserve, err)
	}
	if err := e.Trace.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrEnvTrace, err)
	}
	if e.Trace != nil && e.Tracer != nil {
		return fmt.Errorf("%w: Trace and a caller-supplied Tracer are exclusive (Run installs its own recorder for Trace)", ErrEnvTrace)
	}
	if e.LocalBroadcast {
		if e.Links != nil {
			return fmt.Errorf("%w: Links and LocalBroadcast are exclusive (the radio medium replaces per-edge links; shape it with Delay)", ErrEnvBroadcast)
		}
		if e.Faults.HasLinkFaults() {
			return fmt.Errorf("%w: per-message link faults (Loss/Duplicate/Reorder) do not compose with the local-broadcast medium", ErrEnvBroadcast)
		}
	}
	// Per-edge fault events must name edges of the concrete topology — a
	// direction typo would otherwise surface later, unwrapped and
	// protocol-dependent, instead of as a uniform ErrEnvFaults here.
	if e.Faults != nil {
		var g *topology.Graph
		for i, ev := range e.Faults.Events {
			if ev.Kind != faults.KindLinkDown && ev.Kind != faults.KindLinkUp {
				continue
			}
			if g == nil {
				var err error
				if g, err = e.graph(); err != nil {
					return err
				}
			}
			if !g.HasEdge(ev.From, ev.To) {
				return fmt.Errorf("%w: event %d (%s at t=%g): edge %d->%d is not in the topology",
					ErrEnvFaults, i, ev.Kind, ev.At, ev.From, ev.To)
			}
		}
	}
	return nil
}

// size returns the network size the environment describes.
func (e Env) size() (int, error) {
	if e.Graph != nil {
		n := e.Graph.N()
		if e.N != 0 && e.N != n {
			return 0, fmt.Errorf("%w: env.N = %d disagrees with graph size %d", ErrEnvSize, e.N, n)
		}
		return n, nil
	}
	if e.N < 2 {
		return 0, fmt.Errorf("%w: env needs N >= 2 (or a Graph), got N = %d", ErrEnvSize, e.N)
	}
	return e.N, nil
}

// rejectFaults is the guard protocols without a fault-capable engine call
// first: silently ignoring a fault plan would report fault-free numbers as
// if they had been measured under faults. Peterson also rejects plans —
// its step protocol hard-fails (by design) on the message gaps and
// overtakes every fault axis produces.
func (e Env) rejectFaults(name string) error {
	if e.Faults != nil {
		return fmt.Errorf("runner: protocol %q does not support fault injection (Env.Faults is honoured by election, chang-roberts, itai-rodeh-async and ben-or)", name)
	}
	return nil
}

// rejectAdversary is the guard every protocol without a Byzantine-capable
// engine calls: silently ignoring an adversary plan (or the broadcast
// medium it is paired with) would report honest point-to-point numbers as
// adversarial measurements. Only ben-or honours both axes.
func (e Env) rejectAdversary(name string) error {
	if e.Byzantine != nil {
		return fmt.Errorf("%w: %q ignores Env.Byzantine (ben-or honours adversary plans)", ErrByzantineUnsupported, name)
	}
	if e.LocalBroadcast {
		return fmt.Errorf("%w: %q runs on point-to-point links (ben-or honours Env.LocalBroadcast)", ErrBroadcastUnsupported, name)
	}
	return nil
}

// rejectObserve is the guard protocols without an observable event stream
// call: silently ignoring an observe config would hand back a report with
// no series where the caller asked for one. The event-driven network
// protocols honour Env.Observe; the round-engine and synchronizer
// protocols (and the live runtime) have no kernel event stream to sample.
func (e Env) rejectObserve(name string) error {
	if e.Observe != nil {
		return fmt.Errorf("%w: %q has no kernel event stream to sample (election, chang-roberts, itai-rodeh-async, peterson and ben-or honour Env.Observe)", ErrObserveUnsupported, name)
	}
	return nil
}

// graph returns the concrete topology (building the default ring).
func (e Env) graph() (*topology.Graph, error) {
	if e.Graph != nil {
		return e.Graph, nil
	}
	n, err := e.size()
	if err != nil {
		return nil, err
	}
	return topology.Ring(n), nil
}

// linkFactory resolves Links/Delay into a link factory with the given
// default discipline applied to the delay distribution.
func (e Env) linkFactory(wrap func(dist.Dist) channel.Factory) channel.Factory {
	if e.Links != nil {
		return e.Links
	}
	return wrap(e.delay())
}

// delay returns the delay distribution (defaulting to Exponential(1)).
func (e Env) delay() dist.Dist {
	if e.Delay != nil {
		return e.Delay
	}
	return dist.NewExponential(1)
}

// meanDelay returns the best-known δ of the environment: the declared
// Delta if any, else the delay distribution's mean, else 1 when only a
// link factory is given (factories do not expose a mean before the
// network is built).
func (e Env) meanDelay() float64 {
	if e.Delta > 0 {
		return e.Delta
	}
	if e.Links != nil {
		return 1
	}
	return e.delay().Mean()
}

// Protocol is a runnable protocol: an algorithm plus its options, bound to
// an environment only at Run time. Implementations are option structs
// (Election, ItaiRodehSync, ChangRoberts, ...) whose zero values select
// balanced defaults, so every registry entry is runnable as-is.
type Protocol interface {
	// Name is the registry key (stable, kebab-case).
	Name() string
	// Run executes the protocol on env. Implementations fill every Report
	// field they can and put protocol-specific measurements in Extra.
	Run(env Env) (Report, error)
}

// Run executes protocol p on environment env: the single entry point every
// facade function, tool and sweep goes through. The environment is checked
// by Env.Validate here, so every protocol rejects an invalid Env
// identically.
func Run(env Env, p Protocol) (Report, error) {
	if p == nil {
		return Report{}, errors.New("runner: nil protocol")
	}
	if err := env.Validate(); err != nil {
		return Report{}, err
	}
	var rec *trace.Recorder
	if env.Trace != nil {
		// Capability is checked centrally off the registry metadata: an
		// engine that ignores Env.Tracer would otherwise hand back an
		// empty trace where the caller asked for one.
		if info, ok := ProtocolInfo(p.Name()); ok && !info.SupportsTrace {
			return Report{}, fmt.Errorf("%w: %q has no kernel event stream to trace (election, chang-roberts, itai-rodeh-async, peterson and ben-or honour Env.Trace)", ErrTraceUnsupported, p.Name())
		}
		rec = trace.NewRecorder(env.Trace.MaxEvents)
		env.Tracer = rec
	}
	rep, err := p.Run(env)
	if err != nil {
		return Report{}, err
	}
	rep.Protocol = p.Name()
	if rec != nil {
		rep.Trace = rec.Export()
	}
	return rep, nil
}
