package runner

import (
	"testing"

	"abenet/internal/probe"
)

// The engine-level observed-vs-unobserved pair: a full election run with
// and without a per-event probe at the most aggressive cadence. Unlike the
// kernel pair in internal/sim (which isolates the hook itself), this
// measures the whole collection path — cadence check, gauge sweep,
// sample append — amortised over real protocol work. BENCH_pr8.json
// publishes both numbers side by side.

func benchElection(b *testing.B, obs bool) {
	var samples int
	for i := 0; i < b.N; i++ {
		env := Env{N: 32, Seed: uint64(i), Horizon: 1e6}
		if obs {
			env.Observe = &probe.Config{EveryEvents: 1}
		}
		rep, err := Run(env, Election{})
		if err != nil {
			b.Fatal(err)
		}
		if obs {
			samples += len(rep.Series.Samples)
		}
	}
	if obs && samples == 0 {
		b.Fatal("observed runs produced no samples")
	}
}

// BenchmarkElectionUnobserved is the baseline leg.
func BenchmarkElectionUnobserved(b *testing.B) { benchElection(b, false) }

// BenchmarkElectionObserved samples every event — the worst case the
// probe layer supports.
func BenchmarkElectionObserved(b *testing.B) { benchElection(b, true) }
