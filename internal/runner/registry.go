package runner

import "sort"

// registry maps protocol names to runnable default instances. Every entry
// must be runnable on a default environment (Env{N: n, Seed: s}) with its
// zero-value options — that is what lets tools sweep protocols by name
// with no per-protocol adapter code.
var registry = map[string]Protocol{}

// RegisterProtocol adds a protocol's default instance to the registry. It
// panics on duplicate names: the registry is assembled at init time and a
// clash is a programming error.
func RegisterProtocol(p Protocol) {
	name := p.Name()
	if _, dup := registry[name]; dup {
		panic("runner: duplicate protocol name " + name)
	}
	registry[name] = p
}

func init() {
	RegisterProtocol(Election{})
	RegisterProtocol(ItaiRodehSync{})
	RegisterProtocol(ItaiRodehAsync{})
	RegisterProtocol(ChangRoberts{})
	RegisterProtocol(Peterson{})
	RegisterProtocol(SynchronizedElection{})
	RegisterProtocol(ClockSync{})
	RegisterProtocol(LiveElection{})
	// Synchronized is deliberately unregistered: it needs a MakeNode
	// constructor, so it has no runnable default.
}

// Protocols returns the sorted names of every registered protocol.
func Protocols() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProtocolByName returns the registered protocol's default instance.
func ProtocolByName(name string) (Protocol, bool) {
	p, ok := registry[name]
	return p, ok
}
