package runner

import (
	"reflect"
	"sort"
)

// registry maps protocol names to runnable default instances. Every entry
// must be runnable on a default environment (Env{N: n, Seed: s}) with its
// zero-value options — that is what lets tools sweep protocols by name
// with no per-protocol adapter code.
var registry = map[string]Protocol{}

// RegisterProtocol adds a protocol's default instance to the registry. It
// panics on duplicate names: the registry is assembled at init time and a
// clash is a programming error.
func RegisterProtocol(p Protocol) {
	name := p.Name()
	if _, dup := registry[name]; dup {
		panic("runner: duplicate protocol name " + name)
	}
	registry[name] = p
}

func init() {
	RegisterProtocol(Election{})
	RegisterProtocol(ItaiRodehSync{})
	RegisterProtocol(ItaiRodehAsync{})
	RegisterProtocol(ChangRoberts{})
	RegisterProtocol(Peterson{})
	RegisterProtocol(SynchronizedElection{})
	RegisterProtocol(ClockSync{})
	RegisterProtocol(LiveElection{})
	RegisterProtocol(BenOr{})
	// Synchronized is deliberately unregistered: it needs a MakeNode
	// constructor, so it has no runnable default.
}

// Protocols returns the sorted names of every registered protocol.
func Protocols() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProtocolByName returns the registered protocol's default instance.
func ProtocolByName(name string) (Protocol, bool) {
	p, ok := registry[name]
	return p, ok
}

// faultCapable names the registered protocols whose engines honour
// Env.Faults; every other protocol rejects a non-nil plan (see
// Env.rejectFaults). Kept here, next to the registry, so tools can learn
// fault capability without running anything.
var faultCapable = map[string]bool{
	"election":         true,
	"chang-roberts":    true,
	"itai-rodeh-async": true,
	"ben-or":           true,
}

// byzantineCapable names the protocols whose engines honour Env.Byzantine;
// every other protocol rejects a non-nil plan with ErrByzantineUnsupported
// (see Env.rejectAdversary).
var byzantineCapable = map[string]bool{
	"ben-or": true,
}

// broadcastCapable names the protocols that run on the local-broadcast
// medium; every other protocol rejects Env.LocalBroadcast with
// ErrBroadcastUnsupported.
var broadcastCapable = map[string]bool{
	"ben-or": true,
}

// observeCapable names the protocols whose engines honour Env.Observe
// (time-series sampling off the kernel's post-event hook); every other
// protocol rejects a non-nil config with ErrObserveUnsupported (see
// Env.rejectObserve) — the round-engine and synchronizer protocols have no
// kernel event stream to sample.
var observeCapable = map[string]bool{
	"election":         true,
	"chang-roberts":    true,
	"itai-rodeh-async": true,
	"peterson":         true,
	"ben-or":           true,
}

// traceCapable names the protocols whose engines honour Env.Trace (causal
// event tracing through network.Tracer). The set coincides with
// observeCapable today — both require the event-driven network engine —
// but stays a separate table so a future engine can support one without
// the other.
var traceCapable = map[string]bool{
	"election":         true,
	"chang-roberts":    true,
	"itai-rodeh-async": true,
	"peterson":         true,
	"ben-or":           true,
}

// NondeterministicRuntime is implemented by protocols whose runs are NOT
// pure functions of (Env, seed) — the live goroutine runtime, which races
// real scheduling and wall clocks by design. The capability lives on the
// protocol itself, not in a side table, so registering a new live runtime
// cannot silently leave it cacheable. Serving layers use it to decide what
// is safe to cache and de-duplicate by (spec hash, seed).
type NondeterministicRuntime interface {
	// NondeterministicRuntime reports that runs race wall clocks.
	NondeterministicRuntime() bool
}

// isDeterministic reports whether p's runs are pure functions of
// (Env, seed).
func isDeterministic(p Protocol) bool {
	nd, ok := p.(NondeterministicRuntime)
	return !ok || !nd.NondeterministicRuntime()
}

// OptionField describes one decodable knob of a protocol's option struct:
// its Go field name (the JSON key — encoding/json matches it
// case-insensitively) and its Go type.
type OptionField struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Info is the registry's metadata for one protocol: what a serving layer
// needs to list protocols, decode their options from JSON and decide
// cacheability, without any per-protocol code.
type Info struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Options lists the JSON-decodable fields of the protocol's option
	// struct (exported, non-func fields, in declaration order).
	Options []OptionField `json:"options"`
	// SupportsFaults reports whether the protocol honours Env.Faults.
	SupportsFaults bool `json:"supports_faults"`
	// SupportsByzantine reports whether the protocol honours Env.Byzantine
	// (adversarial per-node roles).
	SupportsByzantine bool `json:"supports_byzantine"`
	// SupportsBroadcast reports whether the protocol can run on the
	// local-broadcast medium (Env.LocalBroadcast).
	SupportsBroadcast bool `json:"supports_broadcast"`
	// SupportsObserve reports whether the protocol honours Env.Observe
	// (time-series sampling).
	SupportsObserve bool `json:"supports_observe"`
	// SupportsTrace reports whether the protocol honours Env.Trace
	// (causal event tracing).
	SupportsTrace bool `json:"supports_trace"`
	// Deterministic reports whether a run is a pure function of
	// (Env, seed) — false only for the live goroutine runtime.
	Deterministic bool `json:"deterministic"`
}

// optionFields reflects the decodable fields of a protocol's option struct.
func optionFields(p Protocol) []OptionField {
	t := reflect.Indirect(reflect.ValueOf(p)).Type()
	fields := make([]OptionField, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() == reflect.Func {
			continue
		}
		fields = append(fields, OptionField{Name: f.Name, Type: f.Type.String()})
	}
	return fields
}

// ProtocolInfo returns the named protocol's registry metadata.
func ProtocolInfo(name string) (Info, bool) {
	p, ok := registry[name]
	if !ok {
		return Info{}, false
	}
	return Info{
		Name:              name,
		Options:           optionFields(p),
		SupportsFaults:    faultCapable[name],
		SupportsByzantine: byzantineCapable[name],
		SupportsBroadcast: broadcastCapable[name],
		SupportsObserve:   observeCapable[name],
		SupportsTrace:     traceCapable[name],
		Deterministic:     isDeterministic(p),
	}, true
}

// Infos returns the metadata of every registered protocol, sorted by name.
func Infos() []Info {
	names := Protocols()
	infos := make([]Info, 0, len(names))
	for _, name := range names {
		info, _ := ProtocolInfo(name)
		infos = append(infos, info)
	}
	return infos
}

// NewInstance returns a fresh pointer to the named protocol's option
// struct — decodable in place with encoding/json (the pointer's method set
// includes the value receivers, so the result runs like any Protocol).
// Each call returns an independent instance, so decoded options never leak
// between runs or into the registry's defaults.
func NewInstance(name string) (Protocol, bool) {
	p, ok := registry[name]
	if !ok {
		return nil, false
	}
	return reflect.New(reflect.Indirect(reflect.ValueOf(p)).Type()).Interface().(Protocol), true
}
