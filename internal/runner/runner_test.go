package runner

import (
	"fmt"
	"reflect"
	"testing"

	"abenet/internal/channel"
	"abenet/internal/core"
	"abenet/internal/dist"
	"abenet/internal/election"
	"abenet/internal/topology"
)

// TestGoldenEquivalence pins the new Env/Protocol path byte-identical to
// the golden seeds of core.TestGoldenSeeds: running through runner.Run
// must reproduce the exact trajectories of the historical entry points.
// If this table ever needs to change, core/golden_test.go must change in
// the same commit and for the same stated reason.
func TestGoldenEquivalence(t *testing.T) {
	delays := map[string]dist.Dist{
		"exp":     nil, // default: Exponential(1)
		"det":     dist.NewDeterministic(1),
		"uniform": dist.NewUniform(0, 2),
		"pareto":  dist.ParetoWithMean(1, 1.5),
		"retx":    dist.NewRetransmission(0.5, 0.5),
		"erlang":  dist.NewErlang(4, 1),
	}
	golden := []struct {
		delay                                       string
		n, leader, messages, activations, knockouts int
		time                                        string
	}{
		{"exp", 4, 1, 8, 3, 2, "9.19898652"},
		{"exp", 8, 7, 8, 1, 0, "19.8543429"},
		{"exp", 16, 6, 16, 1, 0, "55.7411288"},
		{"det", 8, 7, 8, 1, 0, "18"},
		{"uniform", 8, 7, 8, 1, 0, "21.0081605"},
		{"pareto", 8, 7, 8, 1, 0, "16.2780861"},
		{"retx", 8, 7, 8, 1, 0, "19"},
		{"erlang", 8, 7, 8, 1, 0, "17.4052757"},
	}
	for _, g := range golden {
		g := g
		t.Run(fmt.Sprintf("%s/n=%d", g.delay, g.n), func(t *testing.T) {
			rep, err := Run(
				Env{N: g.n, Delay: delays[g.delay], Seed: 42},
				Election{A0: core.DefaultA0(g.n)},
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := RequireElected(rep); err != nil {
				t.Fatal(err)
			}
			ex, ok := rep.Extra.(ElectionExtra)
			if !ok {
				t.Fatalf("Extra is %T, want ElectionExtra", rep.Extra)
			}
			got := []int{rep.LeaderIndex, int(rep.Messages), ex.Activations, ex.Knockouts}
			want := []int{g.leader, g.messages, g.activations, g.knockouts}
			for i, name := range []string{"leader", "messages", "activations", "knockouts"} {
				if got[i] != want[i] {
					t.Errorf("%s = %d, want %d", name, got[i], want[i])
				}
			}
			if ts := fmt.Sprintf("%.9g", rep.Time); ts != g.time {
				t.Errorf("time = %s, want %s", ts, g.time)
			}
		})
	}
}

// TestRunMatchesDirectEngineCalls checks field-for-field that Run produces
// the same numbers as calling the engines directly — the contract the
// deprecated facade shims rely on.
func TestRunMatchesDirectEngineCalls(t *testing.T) {
	t.Run("election", func(t *testing.T) {
		direct, err := core.RunElection(core.ElectionConfig{N: 12, A0: core.DefaultA0(12), Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Env{N: 12, Seed: 99}, Election{A0: core.DefaultA0(12)})
		if err != nil {
			t.Fatal(err)
		}
		ex := rep.Extra.(ElectionExtra)
		roundTrip := core.ElectionResult{
			Elected:        rep.Elected,
			LeaderIndex:    rep.LeaderIndex,
			Leaders:        rep.Leaders,
			Messages:       rep.Messages,
			Transmissions:  rep.Transmissions,
			Time:           rep.Time,
			Events:         rep.Events,
			Activations:    ex.Activations,
			Knockouts:      ex.Knockouts,
			ResidualPurges: ex.ResidualPurges,
			Violations:     rep.Violations,
			Params:         rep.Params,
		}
		if !reflect.DeepEqual(direct, roundTrip) {
			t.Fatalf("diverged:\n direct: %+v\n run:    %+v", direct, roundTrip)
		}
	})
	t.Run("itai-rodeh-sync", func(t *testing.T) {
		direct, err := election.RunItaiRodehSync(9, 0, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Env{N: 9, Seed: 5}, ItaiRodehSync{})
		if err != nil {
			t.Fatal(err)
		}
		if direct.LeaderIndex != rep.LeaderIndex || direct.Messages != rep.Messages ||
			direct.Rounds != rep.Rounds || direct.Leaders != rep.Leaders {
			t.Fatalf("diverged:\n direct: %+v\n run:    %+v", direct, rep)
		}
	})
	t.Run("chang-roberts", func(t *testing.T) {
		direct, err := election.RunChangRoberts(election.ChangRobertsConfig{N: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Env{N: 10, Seed: 3}, ChangRoberts{})
		if err != nil {
			t.Fatal(err)
		}
		if direct.LeaderIndex != rep.LeaderIndex || direct.Messages != rep.Messages || direct.Time != rep.Time {
			t.Fatalf("diverged:\n direct: %+v\n run:    %+v", direct, rep)
		}
	})
}

// TestElectionsOnNonRingTopologies smoke-tests the ring protocols on every
// topology family that embeds a Hamiltonian cycle — the environments the
// old config structs could not even express.
func TestElectionsOnNonRingTopologies(t *testing.T) {
	graphs := map[string]*topology.Graph{
		"biring":    topology.BiRing(8),
		"complete":  topology.Complete(8),
		"hypercube": topology.Hypercube(3),
	}
	protocols := []Protocol{
		Election{},
		ItaiRodehSync{},
		ItaiRodehAsync{},
		ChangRoberts{},
		Peterson{},
		SynchronizedElection{},
	}
	for name, g := range graphs {
		for _, p := range protocols {
			p := p
			t.Run(fmt.Sprintf("%s/%s", p.Name(), name), func(t *testing.T) {
				rep, err := Run(Env{Graph: g, Seed: 11}, p)
				if err != nil {
					t.Fatal(err)
				}
				if err := RequireElected(rep); err != nil {
					t.Fatal(err)
				}
				if rep.Messages == 0 {
					t.Fatal("no messages recorded")
				}
			})
		}
	}
	// A topology without a Hamiltonian cycle must be rejected, not
	// silently mis-run.
	if _, err := Run(Env{Graph: topology.Star(6), Seed: 1}, Election{}); err == nil {
		t.Fatal("star topology must be rejected for ring protocols")
	}
}

// TestRegistry checks that every registered protocol runs by name on a
// plain default environment — the property that lets Sweep and the CLIs
// drive any (protocol × env) pair with zero adapter code.
func TestRegistry(t *testing.T) {
	names := Protocols()
	want := []string{
		"ben-or", "chang-roberts", "clock-sync", "election", "itai-rodeh-async",
		"itai-rodeh-sync", "live-election", "peterson", "synchronized-election",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("registry = %v, want %v", names, want)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			p, ok := ProtocolByName(name)
			if !ok {
				t.Fatalf("ProtocolByName(%q) missing", name)
			}
			if p.Name() != name {
				t.Fatalf("registered under %q but Name() = %q", name, p.Name())
			}
			rep, err := Run(Env{N: 6, Seed: 42}, p)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Protocol != name {
				t.Fatalf("report protocol = %q, want %q", rep.Protocol, name)
			}
			if rep.Messages == 0 {
				t.Fatalf("%s: no messages recorded", name)
			}
			m := rep.Metrics()
			if _, ok := m["messages"]; !ok {
				t.Fatalf("%s: metrics missing 'messages': %v", name, m)
			}
		})
	}
	if _, ok := ProtocolByName("no-such-protocol"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

// TestClockSyncThroughEnv reproduces the ABD-vs-ABE contrast through the
// unified API: bounded delays keep rounds intact, ABE delays break them.
func TestClockSyncThroughEnv(t *testing.T) {
	abd, err := Run(Env{N: 6, Delay: dist.NewUniform(0, 1), Seed: 4},
		ClockSync{Period: 1.1, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if x := abd.Extra.(ClockSyncExtra); x.RoundViolations != 0 {
		t.Fatalf("ABD run violated rounds: %+v", x)
	}
	abe, err := Run(Env{N: 6, Delay: dist.NewExponential(0.5), Seed: 4},
		ClockSync{Period: 1.1, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if x := abe.Extra.(ClockSyncExtra); x.RoundViolations == 0 {
		t.Fatal("ABE run produced no violations")
	}
}

// TestSynchronizedRequiresMakeNode pins the one unregistrable protocol's
// error path.
func TestSynchronizedRequiresMakeNode(t *testing.T) {
	if _, err := Run(Env{N: 4, Seed: 1}, Synchronized{}); err == nil {
		t.Fatal("Synchronized without MakeNode must error")
	}
}

// TestEnvValidation covers the size/graph consistency rules.
func TestEnvValidation(t *testing.T) {
	if _, err := Run(Env{}, Election{}); err == nil {
		t.Fatal("empty env must error")
	}
	if _, err := Run(Env{N: 1}, Election{}); err == nil {
		t.Fatal("N = 1 must error")
	}
	if _, err := Run(Env{N: 5, Graph: topology.Ring(6)}, Election{}); err == nil {
		t.Fatal("N/graph size disagreement must error")
	}
	if _, err := Run(Env{N: 6, Seed: 1}, nil); err == nil {
		t.Fatal("nil protocol must error")
	}
}

// TestElectionDefaultA0RejectsZeroMeanDelay pins that an underivable
// default A0 is an error, not a panic (Deterministic(0) is a legal
// distribution).
func TestElectionDefaultA0RejectsZeroMeanDelay(t *testing.T) {
	if _, err := Run(Env{N: 8, Delay: dist.NewDeterministic(0)}, Election{}); err == nil {
		t.Fatal("zero-mean delay with defaulted A0 must error")
	}
	// An explicit A0 keeps the environment usable.
	rep, err := Run(Env{N: 8, Delay: dist.NewDeterministic(0)}, Election{A0: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := RequireElected(rep); err != nil {
		t.Fatal(err)
	}
}

// TestEnvDeltaDrivesDefaults pins that a declared δ parameterises the
// balanced defaults when a link factory hides the delay mean.
func TestEnvDeltaDrivesDefaults(t *testing.T) {
	// ARQ with p = 0.2, slot 1 has true mean 5; declaring Delta = 5 must
	// give the same default A0 as an explicit A0ForRing(n, 5, 1, 1).
	declared, err := Run(
		Env{N: 16, Links: channel.ARQFactory(0.2, 1), Delta: 5, Seed: 9},
		Election{},
	)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(
		Env{N: 16, Links: channel.ARQFactory(0.2, 1), Seed: 9},
		Election{A0: core.A0ForRing(16, 5, 1, 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if declared.Messages != explicit.Messages || declared.Time != explicit.Time {
		t.Fatalf("Delta-derived default diverged from explicit A0:\n declared: %+v\n explicit: %+v", declared, explicit)
	}
}

// TestClockSyncHonoursMaxRounds pins that the environment's round budget
// caps the clock-sync workload like every other round-based protocol.
func TestClockSyncHonoursMaxRounds(t *testing.T) {
	rep, err := Run(Env{N: 4, MaxRounds: 7, Seed: 2}, ClockSync{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 7 {
		t.Fatalf("rounds = %d, want the MaxRounds cap 7", rep.Rounds)
	}
}
