package runner

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/simtime"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// TestEnvValidateErrorPaths covers each structured validation error.
func TestEnvValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		env  Env
		want error
	}{
		{"empty", Env{}, ErrEnvSize},
		{"n=1", Env{N: 1}, ErrEnvSize},
		{"n/graph mismatch", Env{N: 5, Graph: topology.Ring(6)}, ErrEnvSize},
		{"negative delta", Env{N: 4, Delta: -1}, ErrEnvDelta},
		{"links+delay without delta", Env{
			N:     4,
			Delay: dist.NewExponential(1),
			Links: channel.FIFOFactory(dist.NewExponential(1)),
		}, ErrEnvAmbiguousDelay},
		{"broken fault plan", Env{
			N:      4,
			Faults: &faults.Plan{Loss: 2},
		}, ErrEnvFaults},
		{"fault event outside graph", Env{
			N:      4,
			Faults: &faults.Plan{Events: []faults.Event{faults.CrashAt(1, 7)}},
		}, ErrEnvFaults},
		{"link event on absent edge", Env{
			// The unidirectional Ring(4) has 1->2 but not the reverse.
			N:      4,
			Faults: &faults.Plan{Events: []faults.Event{faults.LinkDownAt(1, 2, 1)}},
		}, ErrEnvFaults},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.env.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", c.env)
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("error %q is not %q", err, c.want)
			}
			// Run must reject the same environment identically.
			if _, runErr := Run(c.env, Election{}); runErr == nil || !errors.Is(runErr, c.want) {
				t.Fatalf("Run error %q is not %q", runErr, c.want)
			}
		})
	}
}

// TestEnvValidateAcceptsResolvedAmbiguity pins the escape hatch: Links and
// Delay may coexist once Delta declares the governing δ.
func TestEnvValidateAcceptsResolvedAmbiguity(t *testing.T) {
	env := Env{
		N:     4,
		Delay: dist.NewExponential(1),
		Links: channel.ARQFactory(0.5, 1),
		Delta: 2,
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(env, Election{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RequireElected(rep); err != nil {
		t.Fatal(err)
	}
}

// TestElectionUnderLossThroughEnv drives the tentpole end to end: a lossy
// plan on the unified runner yields fault telemetry on the report, and the
// run stays deterministic.
func TestElectionUnderLossThroughEnv(t *testing.T) {
	env := Env{
		N:       16,
		Seed:    5,
		Horizon: simtime.Time(5000),
		Faults:  &faults.Plan{Loss: 0.1, Duplicate: 0.05},
	}
	first, err := Run(env, Election{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Faults == nil {
		t.Fatal("no fault telemetry on the report")
	}
	if first.Faults.MessagesDropped == 0 {
		t.Fatal("10% loss dropped nothing")
	}
	m := first.Metrics()
	for _, key := range []string{"fault_dropped", "fault_duplicated", "fault_crashes", "elected"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
	}
	second, err := Run(env, Election{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault-injected run not deterministic:\n a: %+v\n b: %+v", first, second)
	}
}

// TestFaultPlansOnAsyncRingProtocols smoke-tests every fault-capable
// protocol on ring and hypercube, each under a plan its channel
// assumptions tolerate: the election and Chang–Roberts accept arbitrary
// loss/reorder/outage mixes; Itai–Rodeh async requires per-link FIFO, so
// it gets the order-preserving axes (loss, duplication) only.
func TestFaultPlansOnAsyncRingProtocols(t *testing.T) {
	mixed := &faults.Plan{Loss: 0.05, Reorder: 0.1, Events: []faults.Event{
		faults.LinkDownAt(3, 0, 1), faults.LinkUpAt(6, 0, 1),
	}}
	fifoSafe := &faults.Plan{Loss: 0.05, Duplicate: 0.05}
	cases := []struct {
		proto Protocol
		plan  *faults.Plan
	}{
		{Election{}, mixed},
		{ChangRoberts{}, mixed},
		{ItaiRodehAsync{}, fifoSafe},
	}
	graphs := map[string]*topology.Graph{"ring": nil, "hypercube": topology.Hypercube(3)}
	for _, c := range cases {
		for gname, g := range graphs {
			t.Run(fmt.Sprintf("%s/%s", c.proto.Name(), gname), func(t *testing.T) {
				env := Env{Graph: g, Seed: 17, Horizon: simtime.Time(20000), Faults: c.plan}
				if g == nil {
					env.N = 8
				}
				rep, err := Run(env, c.proto)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Faults == nil {
					t.Fatal("no telemetry")
				}
				if rep.Leaders > 1 {
					// Loss can break termination but these small runs
					// should not mint extra leaders; if one ever does,
					// that is a finding worth looking at, not a flake.
					t.Fatalf("%d leaders under loss", rep.Leaders)
				}
			})
		}
	}
}

// TestFaultsRejectedByUnsupportingProtocols pins the explicit contract: a
// protocol without a fault-capable engine refuses to pretend.
func TestFaultsRejectedByUnsupportingProtocols(t *testing.T) {
	plan := &faults.Plan{Loss: 0.1}
	unsupported := []Protocol{
		ItaiRodehSync{},
		SynchronizedElection{},
		ClockSync{},
		LiveElection{},
		Peterson{}, // reliable-FIFO step protocol: every fault axis breaks it
		Synchronized{MakeNode: func(int) syncnet.Node { return brokenSyncNode{} }},
	}
	for _, p := range unsupported {
		t.Run(p.Name(), func(t *testing.T) {
			_, err := Run(Env{N: 4, Seed: 1, Faults: plan}, p)
			if err == nil {
				t.Fatalf("%s accepted a fault plan", p.Name())
			}
		})
	}
}
