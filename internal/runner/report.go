package runner

import (
	"fmt"
	"time"

	"abenet/internal/core"
	"abenet/internal/faults"
	"abenet/internal/probe"
	"abenet/internal/trace"
)

// Report is the common result shape of every protocol run. Fields that do
// not apply to a protocol stay at their zero value; protocol-specific
// measurements live in Extra, which holds one of the typed *Extra structs
// below (documented per protocol).
type Report struct {
	// Protocol is the registry name of the protocol that ran.
	Protocol string
	// Elected reports whether some node reached a leader state (election
	// protocols only).
	Elected bool
	// LeaderIndex is the simulator-level index of the leader, or -1. It is
	// measurement-only: anonymous protocols never see identities.
	LeaderIndex int
	// Leaders counts nodes in a leader state (1 after a correct election).
	Leaders int
	// Messages counts logical message sends, including synchronizer
	// control traffic where applicable.
	Messages uint64
	// Transmissions counts physical transmissions (≥ Messages under ARQ;
	// 0 when the engine does not model retransmission).
	Transmissions uint64
	// Rounds is the number of rounds driven (round-based protocols only).
	Rounds int
	// Events is the number of kernel events the run executed — the
	// denominator of events/sec throughput measurements. A batch of
	// same-instant deliveries counts as one event. 0 for engines without
	// an event kernel (the native round engine and the live runtime).
	// Deliberately excluded from Metrics(): it measures the engine, not
	// the protocol, so it must not widen every sweep's metric key set.
	Events uint64
	// Time is the virtual time at which the run ended. For the live
	// (goroutine) runtime it is the wall-clock duration in seconds.
	Time float64
	// Violations collects invariant violations; empty in every correct run.
	Violations []string
	// Params are the tightest ABE parameters of the simulated network
	// (zero for engines that do not model delays, e.g. the native
	// synchronous round engine).
	Params core.Params
	// Faults is the fault-injection telemetry — what Env.Faults actually
	// did to the run (drops, duplicates, crash intervals) next to whether
	// the protocol still terminated correctly (Elected, Leaders,
	// Violations, Time). Nil when the environment injected no faults.
	Faults *faults.Telemetry
	// Series is the time series sampled during the run; nil when the
	// environment set no Env.Observe. The series is measurement output
	// only: it never feeds Metrics(), so observed and unobserved runs of
	// the same (Env, seed) report identical metrics.
	Series *probe.Series
	// Trace is the exported causal trace of the run; nil when the
	// environment set no Env.Trace. Like Series it is measurement output
	// only: it never feeds Metrics() and is excluded from result
	// identity, so traced and untraced runs of the same (Env, seed)
	// report identical metrics.
	Trace *trace.Export
	// Extra holds the protocol-specific measurements as one of the typed
	// *Extra structs in this package, or nil.
	Extra any
}

// extraMetrics is implemented by Extra payloads that contribute named
// measurements to Metrics().
type extraMetrics interface {
	metricsInto(m map[string]float64)
}

// Metrics flattens the report into named measurements for the experiment
// harness: the common counters plus everything the protocol's Extra
// contributes. The key set is constant per protocol, so sweep aggregation
// sees every metric in every repetition.
func (r Report) Metrics() map[string]float64 {
	m := map[string]float64{
		"messages":      float64(r.Messages),
		"transmissions": float64(r.Transmissions),
		"rounds":        float64(r.Rounds),
		"time":          r.Time,
		"leaders":       float64(r.Leaders),
		"violations":    float64(len(r.Violations)),
	}
	if r.Elected {
		m["elected"] = 1
	} else {
		m["elected"] = 0
	}
	// Fault telemetry appears whenever a plan was injected (even one that
	// happened to fire nothing), so a fault sweep sees the keys at every
	// position including the zero-severity baseline.
	r.Faults.MetricsInto(m)
	if x, ok := r.Extra.(extraMetrics); ok {
		x.metricsInto(m)
	}
	return m
}

// RequireElected returns an error unless the report shows exactly one
// leader and no invariant violations — the per-run acceptance check the
// election experiments share.
func RequireElected(r Report) error {
	if r.Leaders != 1 {
		return fmt.Errorf("runner: %s elected %d leaders", r.Protocol, r.Leaders)
	}
	if len(r.Violations) != 0 {
		return fmt.Errorf("runner: %s reported invariant violations: %v", r.Protocol, r.Violations)
	}
	return nil
}

// ElectionExtra is the Extra payload of the ABE election protocol.
type ElectionExtra struct {
	// Activations sums idle→active transitions over all nodes.
	Activations int
	// Knockouts sums purged messages over all nodes.
	Knockouts int
	// ResidualPurges counts messages absorbed by the leader.
	ResidualPurges int
	// Recandidacies counts passive→idle transitions via the opt-in
	// re-candidacy timeout (0 whenever the timeout is disabled).
	Recandidacies int
	// StalePurges counts tokens purged for carrying an outdated
	// re-candidacy epoch (0 whenever the timeout is disabled).
	StalePurges int
}

func (x ElectionExtra) metricsInto(m map[string]float64) {
	m["activations"] = float64(x.Activations)
	m["knockouts"] = float64(x.Knockouts)
	m["residual_purges"] = float64(x.ResidualPurges)
	m["recandidacies"] = float64(x.Recandidacies)
	m["stale_purges"] = float64(x.StalePurges)
}

// SyncExtra is the Extra payload of synchronized executions.
type SyncExtra struct {
	// MinRounds is the number of rounds completed by every node.
	MinRounds int
	// PayloadMessages counts protocol payloads carried (Messages also
	// includes synchronizer control traffic).
	PayloadMessages uint64
	// MessagesPerRound is Messages/MinRounds — the sustained per-round
	// cost Theorem 1 lower bounds by n.
	MessagesPerRound float64
	// Stopped reports whether the protocol stopped the run (vs hitting
	// the round budget).
	Stopped bool
	// StopCause is the protocol's stop cause, if any.
	StopCause string
}

func (x SyncExtra) metricsInto(m map[string]float64) {
	m["payload_messages"] = float64(x.PayloadMessages)
	m["messages_per_round"] = x.MessagesPerRound
}

// ClockSyncExtra is the Extra payload of the clock-driven ABD synchronizer
// workload.
type ClockSyncExtra struct {
	// RoundViolations counts messages that arrived after their receiver
	// had advanced past the sender's round — synchrony broken.
	RoundViolations uint64
	// MaxLateness is the worst observed lateness among violations.
	MaxLateness int
	// ViolationRate is RoundViolations/Messages (0 for an empty run).
	ViolationRate float64
}

func (x ClockSyncExtra) metricsInto(m map[string]float64) {
	m["round_violations"] = float64(x.RoundViolations)
	m["violation_rate"] = x.ViolationRate
}

// ConsensusExtra is the Extra payload of the Ben-Or consensus protocol.
// Agreement and Validity are judged over honest nodes only; the properties
// say nothing about what Byzantine role holders output.
type ConsensusExtra struct {
	// F is the provisioned adversary budget the run waited against.
	F int
	// Honest counts nodes holding no Byzantine role.
	Honest int
	// Decided counts honest nodes that decided.
	Decided int
	// Decision is the unanimous honest decision, or -1.
	Decision int
	// Agreement: no two honest nodes decided different values.
	Agreement bool
	// Validity: a unanimous honest start is the only decidable value
	// (vacuously true on split starts).
	Validity bool
	// Termination: every honest node decided.
	Termination bool
	// DecisionRound is the highest round at which an honest node decided.
	DecisionRound int
	// CoinFlips counts fallback coin flips across honest nodes.
	CoinFlips int
	// Ignored counts malformed payloads honest nodes dropped.
	Ignored int
}

func (x ConsensusExtra) metricsInto(m map[string]float64) {
	m["decided"] = float64(x.Decided)
	m["decision_round"] = float64(x.DecisionRound)
	m["coin_flips"] = float64(x.CoinFlips)
	m["ignored"] = float64(x.Ignored)
	m["agreement"] = boolMetric(x.Agreement)
	m["validity"] = boolMetric(x.Validity)
	m["termination"] = boolMetric(x.Termination)
}

// boolMetric renders a property verdict as a sweep-averageable 0/1.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// LiveExtra is the Extra payload of the live goroutine runtime.
type LiveExtra struct {
	// Elapsed is the wall-clock duration until the leader emerged.
	Elapsed time.Duration
}
