package runner

import (
	"errors"
	"reflect"
	"testing"

	"abenet/internal/probe"
	"abenet/internal/trace"
)

// TestObserveMetadataMatchesEngines runs every registered protocol under an
// observe config: each must either honour it (metadata says capable) or
// reject it with the typed sentinel — never silently drop the request.
func TestObserveMetadataMatchesEngines(t *testing.T) {
	for _, name := range Protocols() {
		info, _ := ProtocolInfo(name)
		p, _ := NewInstance(name)
		env := Env{N: 4, Seed: 1, Horizon: 2000,
			Observe: &probe.Config{EveryEvents: 2}}
		rep, err := Run(env, p)
		switch {
		case info.SupportsObserve && err != nil:
			t.Errorf("%s: metadata says observe supported, Run failed: %v", name, err)
		case info.SupportsObserve && rep.Series == nil:
			t.Errorf("%s: metadata says observe supported, report carries no series", name)
		case !info.SupportsObserve && !errors.Is(err, ErrObserveUnsupported):
			t.Errorf("%s: metadata says no observe support, Run = %v, want ErrObserveUnsupported", name, err)
		}
	}
}

// TestObservedRunByteIdentical is the golden pin behind the probe design:
// the collector reads off the kernel's post-event hook and never schedules,
// so an observed run must be byte-identical to an unobserved one at the
// same (Env, seed) — same report, same metrics, same full message trace —
// for every observe-capable protocol, at an aggressive cadence (a sample
// after every single event).
func TestObservedRunByteIdentical(t *testing.T) {
	for _, info := range Infos() {
		if !info.SupportsObserve {
			continue
		}
		name := info.Name
		execute := func(obs *probe.Config) (Report, []trace.Event) {
			p, ok := NewInstance(name)
			if !ok {
				t.Fatalf("%s: no registry instance", name)
			}
			rec := trace.NewRecorder(0)
			rep, err := Run(Env{N: 5, Seed: 7, Horizon: 5000, Tracer: rec, Observe: obs}, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return rep, rec.Events()
		}
		plain, plainTrace := execute(nil)
		observed, obsTrace := execute(&probe.Config{EveryEvents: 1, Interval: 0.25})

		if observed.Series == nil || len(observed.Series.Samples) == 0 {
			t.Errorf("%s: observed run produced no samples", name)
			continue
		}
		if plain.Series != nil {
			t.Errorf("%s: unobserved run carries a series", name)
		}
		if !reflect.DeepEqual(plain.Metrics(), observed.Metrics()) {
			t.Errorf("%s: observed metrics differ from unobserved:\n  %v\n  %v",
				name, plain.Metrics(), observed.Metrics())
		}
		observed.Series = nil
		if !reflect.DeepEqual(plain, observed) {
			t.Errorf("%s: observed report differs from unobserved:\n  %+v\n  %+v", name, plain, observed)
		}
		if !reflect.DeepEqual(plainTrace, obsTrace) {
			t.Errorf("%s: observed trace differs from unobserved (%d vs %d events)",
				name, len(plainTrace), len(obsTrace))
		}
	}
}

// TestObserveSeriesShape pins the engine-level gauge schema: the network
// columns are always present, in order, followed by the protocol's own.
func TestObserveSeriesShape(t *testing.T) {
	rep, err := Run(Env{N: 6, Seed: 2, Observe: &probe.Config{EveryEvents: 1}}, Election{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Series
	want := []string{"in_flight", "sent", "delivered", "timers_fired", "crashed",
		"byz_interventions", "candidates", "passive", "elected"}
	if !reflect.DeepEqual(s.Names, want) {
		t.Fatalf("series names = %v, want %v", s.Names, want)
	}
	last := s.Samples[len(s.Samples)-1]
	if len(last.Values) != len(want) {
		t.Fatalf("sample width %d != %d names", len(last.Values), len(want))
	}
	// At the end of a correct election exactly one node is elected and the
	// cumulative counters match the report.
	byName := func(name string) float64 {
		for i, n := range s.Names {
			if n == name {
				return last.Values[i]
			}
		}
		t.Fatalf("no gauge %q", name)
		return 0
	}
	if got := byName("elected"); got != 1 {
		t.Errorf("final elected gauge = %g, want 1", got)
	}
	if got := byName("sent"); got != float64(rep.Messages) {
		t.Errorf("final sent gauge = %g, want %d (report messages)", got, rep.Messages)
	}
	if got := byName("in_flight"); got != 0 {
		t.Errorf("final in_flight = %g, want 0 after the run drained", got)
	}
}

// TestObservedSeriesDeterministic: the samples themselves are a pure
// function of (Env, seed) — two observed runs produce identical series.
func TestObservedSeriesDeterministic(t *testing.T) {
	run := func() *probe.Series {
		p, _ := NewInstance("election")
		rep, err := Run(Env{N: 8, Seed: 11, Horizon: 5000,
			Observe: &probe.Config{EveryEvents: 3, Interval: 0.5}}, p)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Series
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Names, b.Names) || !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatalf("repeated observed runs diverged: %d vs %d samples", len(a.Samples), len(b.Samples))
	}
}

// TestEnvValidateObserve pins the environment-level typed error.
func TestEnvValidateObserve(t *testing.T) {
	bad := Env{N: 4, Observe: &probe.Config{}}
	if err := bad.Validate(); !errors.Is(err, ErrEnvObserve) {
		t.Fatalf("cadence-less observe: Validate = %v, want ErrEnvObserve", err)
	}
	if err := (Env{N: 4, Observe: &probe.Config{Interval: 0.5}}).Validate(); err != nil {
		t.Fatalf("valid observe env rejected: %v", err)
	}
}
