package runner

import (
	"fmt"

	"abenet/internal/consensus"
	"abenet/internal/topology"
)

// BenOr is Ben-Or's randomized binary consensus (PODC 1983) running
// message-driven on the ABE network. It is the registry's only protocol
// honouring Env.Byzantine and Env.LocalBroadcast: an adversary plan makes
// the role holders lie on the wire, and the local-broadcast medium forces
// every lie to be consistent — the Khan & Vaidya separation experiment E14
// sweeps. Env.Graph must be complete (nil builds topology.Complete over
// Env.N); Env.MaxRounds caps the asynchronous round number (0 means 200).
// Extra: ConsensusExtra.
type BenOr struct {
	// F is the provisioned adversary budget: nodes wait for n−F values per
	// phase. Must satisfy 3F < n; 0 means the maximal floor((n−1)/3). The
	// Byzantine plan may assign more roles than F — that is how an
	// experiment probes past the tolerance bound.
	F int
	// Init selects the initial-value assignment: "random" (default),
	// "zeros", "ones" or "half".
	Init string
	// Coin selects the fallback coin: "local" (default, Ben-Or's private
	// coin) or "common" (a shared-coin oracle).
	Coin string
}

// Name implements Protocol.
func (BenOr) Name() string { return "ben-or" }

// Run implements Protocol.
func (p BenOr) Run(env Env) (Report, error) {
	n, err := env.size()
	if err != nil {
		return Report{}, err
	}
	graph := env.Graph
	if graph == nil {
		// The runner's ring default cannot carry Ben-Or's all-hear-all
		// counting rules; a bare N means the complete graph here.
		graph = topology.Complete(n)
	}
	f := p.F
	if f == 0 {
		f = (n - 1) / 3
	}
	init, err := parseInit(p.Init)
	if err != nil {
		return Report{}, err
	}
	coin, err := parseCoin(p.Coin)
	if err != nil {
		return Report{}, err
	}
	res, err := consensus.Run(consensus.Config{
		Graph:          graph,
		F:              f,
		Init:           init,
		Coin:           coin,
		MaxRounds:      env.MaxRounds,
		Delay:          env.Delay,
		Links:          env.Links,
		LocalBroadcast: env.LocalBroadcast,
		Clocks:         env.Clocks,
		Processing:     env.Processing,
		Seed:           env.Seed,
		Scheduler:      env.Scheduler,
		Horizon:        env.Horizon,
		MaxEvents:      env.MaxEvents,
		Tracer:         env.Tracer,
		Faults:         env.Faults,
		Byzantine:      env.Byzantine,
		Observe:        env.Observe,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Messages:      res.Metrics.MessagesSent,
		Transmissions: res.Metrics.Transmissions,
		Rounds:        res.Rounds,
		Time:          res.Time,
		Events:        res.Events,
		Violations:    res.Violations,
		Params:        res.Params,
		Faults:        res.Faults,
		Series:        res.Series,
		Extra: ConsensusExtra{
			F:             res.F,
			Honest:        res.Honest,
			Decided:       res.Decided,
			Decision:      res.Decision,
			Agreement:     res.Agreement,
			Validity:      res.Validity,
			Termination:   res.Termination,
			DecisionRound: res.DecisionRound,
			CoinFlips:     res.CoinFlips,
			Ignored:       res.Ignored,
		},
	}, nil
}

// parseInit maps the BenOr.Init vocabulary onto consensus.InitKind.
func parseInit(s string) (consensus.InitKind, error) {
	switch s {
	case "", "random":
		return consensus.InitRandom, nil
	case "zeros":
		return consensus.InitZeros, nil
	case "ones":
		return consensus.InitOnes, nil
	case "half":
		return consensus.InitHalf, nil
	default:
		return 0, fmt.Errorf("runner: unknown ben-or Init %q (random, zeros, ones, half)", s)
	}
}

// parseCoin maps the BenOr.Coin vocabulary onto consensus.Coin.
func parseCoin(s string) (consensus.Coin, error) {
	switch s {
	case "", "local":
		return consensus.CoinLocal, nil
	case "common":
		return consensus.CoinCommon, nil
	default:
		return 0, fmt.Errorf("runner: unknown ben-or Coin %q (local, common)", s)
	}
}
