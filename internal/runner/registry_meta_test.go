package runner

import (
	"bytes"
	"encoding/json"
	"testing"

	"abenet/internal/faults"
)

// faultPlanProbe is a minimal real plan for probing engine acceptance.
var faultPlanProbe = faults.Plan{Loss: 0.01}

// TestNewInstanceDecodesOptions checks the serving layer's contract: a fresh
// instance from the registry is populated in place by encoding/json and runs
// with the decoded options.
func TestNewInstanceDecodesOptions(t *testing.T) {
	p, ok := NewInstance("election")
	if !ok {
		t.Fatal("election is not registered")
	}
	dec := json.NewDecoder(bytes.NewReader([]byte(`{"A0": 0.25, "KeepRunning": false}`)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		t.Fatalf("decoding options: %v", err)
	}
	e, ok := p.(*Election)
	if !ok {
		t.Fatalf("NewInstance(election) = %T, want *Election", p)
	}
	if e.A0 != 0.25 {
		t.Fatalf("decoded A0 = %g, want 0.25", e.A0)
	}
	if p.Name() != "election" {
		t.Fatalf("instance Name() = %q", p.Name())
	}

	// Unknown option fields must be rejected, not silently dropped: a
	// typoed knob would otherwise run the default and report wrong numbers.
	dec = json.NewDecoder(bytes.NewReader([]byte(`{"A9": 0.25}`)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err == nil {
		t.Fatal("decoding an unknown option field succeeded")
	}
}

// TestNewInstanceIsFresh checks that instances are independent: decoding
// into one must not mutate the registry default or other instances.
func TestNewInstanceIsFresh(t *testing.T) {
	a, _ := NewInstance("election")
	b, _ := NewInstance("election")
	a.(*Election).A0 = 0.9
	if b.(*Election).A0 != 0 {
		t.Fatal("NewInstance returned a shared instance")
	}
	reg, _ := ProtocolByName("election")
	if reg.(Election).A0 != 0 {
		t.Fatal("mutating an instance changed the registry default")
	}
}

// TestInfosCoverRegistry checks that every registered protocol has metadata
// and that the fault-capability metadata matches the engines' actual
// behaviour (rejectFaults vs honouring Env.Faults).
func TestInfosCoverRegistry(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Protocols()) {
		t.Fatalf("Infos() has %d entries, registry has %d", len(infos), len(Protocols()))
	}
	byName := map[string]Info{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	for _, name := range Protocols() {
		info, ok := byName[name]
		if !ok {
			t.Fatalf("no Info for registered protocol %q", name)
		}
		if info.Name != name {
			t.Fatalf("Info.Name = %q under key %q", info.Name, name)
		}
	}
	if !byName["election"].SupportsFaults {
		t.Fatal("election must report fault support")
	}
	if byName["peterson"].SupportsFaults {
		t.Fatal("peterson must not report fault support")
	}
	if byName["live-election"].Deterministic {
		t.Fatal("live-election must not report determinism")
	}
	if !byName["election"].Deterministic {
		t.Fatal("election must report determinism")
	}
	// The option metadata must name real decodable fields.
	found := false
	for _, f := range byName["election"].Options {
		if f.Name == "A0" && f.Type == "float64" {
			found = true
		}
	}
	if !found {
		t.Fatalf("election options %v do not list A0 float64", byName["election"].Options)
	}
}

// TestFaultMetadataMatchesEngines runs each registered protocol with a
// trivial fault plan and checks acceptance/rejection against the metadata,
// so the two can never drift apart.
func TestFaultMetadataMatchesEngines(t *testing.T) {
	for _, name := range Protocols() {
		if name == "live-election" {
			continue // wall-clock runtime; rejection is covered by metadata assertions above
		}
		info, _ := ProtocolInfo(name)
		p, _ := NewInstance(name)
		env := Env{N: 4, Seed: 1, Horizon: 500, Faults: &faultPlanProbe}
		_, err := Run(env, p)
		if info.SupportsFaults && err != nil {
			t.Errorf("%s: metadata says faults supported, Run failed: %v", name, err)
		}
		if !info.SupportsFaults && err == nil {
			t.Errorf("%s: metadata says no fault support, but Run accepted a plan", name)
		}
	}
}
