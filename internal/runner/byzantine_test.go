package runner

import (
	"errors"
	"testing"

	"abenet/internal/byzantine"
	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/simtime"
)

// TestByzantineMetadataMatchesEngines runs every registered protocol under
// an adversary plan and under the local-broadcast medium: each must either
// honour the environment (metadata says capable) or reject it with the
// matching typed sentinel — never silently report honest point-to-point
// numbers as adversarial measurements.
func TestByzantineMetadataMatchesEngines(t *testing.T) {
	for _, name := range Protocols() {
		info, _ := ProtocolInfo(name)

		p, _ := NewInstance(name)
		env := Env{N: 4, Seed: 1, Horizon: 2000, Byzantine: &byzantine.Plan{
			Roles: []byzantine.Role{{Node: 0, Behavior: byzantine.Mute, Prob: 0.5}},
		}}
		_, err := Run(env, p)
		switch {
		case info.SupportsByzantine && err != nil:
			t.Errorf("%s: metadata says byzantine supported, Run failed: %v", name, err)
		case !info.SupportsByzantine && !errors.Is(err, ErrByzantineUnsupported):
			t.Errorf("%s: metadata says no byzantine support, Run = %v, want ErrByzantineUnsupported", name, err)
		}

		p, _ = NewInstance(name)
		_, err = Run(Env{N: 4, Seed: 1, Horizon: 2000, LocalBroadcast: true}, p)
		switch {
		case info.SupportsBroadcast && err != nil:
			t.Errorf("%s: metadata says broadcast supported, Run failed: %v", name, err)
		case !info.SupportsBroadcast && !errors.Is(err, ErrBroadcastUnsupported):
			t.Errorf("%s: metadata says no broadcast support, Run = %v, want ErrBroadcastUnsupported", name, err)
		}
	}
}

// TestBenOrThroughRegistry drives the consensus protocol exactly as the
// serving layer would: by name, with decoded options, on an adversarial
// environment — and checks the consensus verdict surfaces in Extra and
// Metrics.
func TestBenOrThroughRegistry(t *testing.T) {
	rep, err := Run(Env{
		N:              8,
		Seed:           3,
		Horizon:        simtime.Time(10_000),
		Byzantine:      byzantine.Equivocators(1),
		LocalBroadcast: true,
	}, BenOr{F: 1, Init: "half", Coin: "common"})
	if err != nil {
		t.Fatal(err)
	}
	x, ok := rep.Extra.(ConsensusExtra)
	if !ok {
		t.Fatalf("Extra = %T, want ConsensusExtra", rep.Extra)
	}
	if !x.Agreement || !x.Validity || !x.Termination {
		t.Fatalf("consensus failed under one equivocator: %+v (violations %v)", x, rep.Violations)
	}
	if x.Honest != 7 || x.Decided != 7 {
		t.Fatalf("honest/decided = %d/%d, want 7/7", x.Honest, x.Decided)
	}
	if rep.Faults == nil || rep.Faults.Byzantine == nil {
		t.Fatal("report carries no byzantine telemetry")
	}
	// The broadcast medium defeats equivocation: only corruptions remain.
	if rep.Faults.Byzantine.Equivocations != 0 || rep.Faults.Byzantine.Corruptions == 0 {
		t.Fatalf("broadcast telemetry = %+v, want corruptions only", rep.Faults.Byzantine)
	}
	m := rep.Metrics()
	for _, key := range []string{"agreement", "validity", "termination", "decided",
		"coin_flips", "byz_corruptions", "byz_equivocations"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, m)
		}
	}
	if m["agreement"] != 1 || m["termination"] != 1 {
		t.Fatalf("metric verdicts = agreement %g, termination %g, want 1/1", m["agreement"], m["termination"])
	}
}

// TestBenOrOptionErrors pins the vocabulary errors.
func TestBenOrOptionErrors(t *testing.T) {
	if _, err := Run(Env{N: 4, Seed: 1}, BenOr{Init: "fives"}); err == nil {
		t.Fatal("unknown Init accepted")
	}
	if _, err := Run(Env{N: 4, Seed: 1}, BenOr{Coin: "weighted"}); err == nil {
		t.Fatal("unknown Coin accepted")
	}
	if _, err := Run(Env{N: 10, Seed: 1}, BenOr{F: 4}); err == nil {
		t.Fatal("f beyond n/3 accepted")
	}
}

// TestEnvValidateByzantine pins the environment-level typed errors.
func TestEnvValidateByzantine(t *testing.T) {
	bad := Env{N: 4, Byzantine: &byzantine.Plan{
		Roles: []byzantine.Role{{Node: 9, Behavior: byzantine.Mute}},
	}}
	if err := bad.Validate(); !errors.Is(err, ErrEnvByzantine) {
		t.Fatalf("out-of-range role: Validate = %v, want ErrEnvByzantine", err)
	}
	conflict := Env{N: 4, LocalBroadcast: true,
		Links: channel.RandomDelayFactory(dist.NewExponential(1))}
	if err := conflict.Validate(); !errors.Is(err, ErrEnvBroadcast) {
		t.Fatalf("LocalBroadcast+Links: Validate = %v, want ErrEnvBroadcast", err)
	}
	lossy := Env{N: 4, LocalBroadcast: true, Faults: &faults.Plan{Loss: 0.1}}
	if err := lossy.Validate(); !errors.Is(err, ErrEnvBroadcast) {
		t.Fatalf("LocalBroadcast+link faults: Validate = %v, want ErrEnvBroadcast", err)
	}
	if err := (Env{N: 4, Byzantine: byzantine.Equivocators(1), LocalBroadcast: true}).Validate(); err != nil {
		t.Fatalf("valid adversarial env rejected: %v", err)
	}
}
