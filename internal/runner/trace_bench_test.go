package runner

import (
	"testing"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
	"abenet/internal/trace"
)

// Tracer-overhead benchmarks, in two pairs mirroring the observer pair in
// internal/sim:
//
//   - TracerDetached / TracerAttached is the gated pair. The attached leg
//     installs a null Tracer — interface dispatch, ID assignment, and the
//     network's current-cause threading run on every kernel event, but
//     nothing is stored or exported. CI fails the build if this leg costs
//     more than a few percent over the detached one: like the kernel's
//     observer hook, the trace hook is a nil check when detached and must
//     stay near-free when attached, so any real gap is a regression in the
//     network hot path.
//
//   - ElectionUntraced / ElectionTraced is the published pair. The traced
//     leg runs the real Recorder and Export — full event storage, Lamport
//     bookkeeping, and the final serialisable trace. That is inherently
//     allocation-bound (a 32-node run stores ~2k events), so the pair is
//     recorded side by side in BENCH_pr9.json as the honest price of
//     collecting a trace, not gated at the hook threshold.
//
// The environment is a full ABE instance (ARQ links, drifting clocks, a
// processing-time model), not the all-defaults ring: the numbers price the
// tracer against what a simulated event actually costs in the
// configurations the paper studies, where condition 1–3 machinery (per-hop
// retransmission sampling, clock conversion, processing delays) runs on
// every event. On the all-defaults ring most events are bare timer fires
// that do almost no work, and the ratio would measure the emptiness of the
// baseline rather than the cost of the tracer.
func traceBenchEnv(i int) Env {
	return Env{
		N:          32,
		Seed:       uint64(i),
		Horizon:    1e6,
		Links:      channel.ARQFactory(0.5, 0.5),
		Delta:      1,
		Clocks:     clock.NewWanderingModel(1, 1.1, 1),
		Processing: dist.NewExponential(0.1),
	}
}

// nullTracer assigns IDs and threads causes like the real Recorder but
// stores nothing: it isolates the per-event hook cost (interface dispatch
// plus TraceRef plumbing) from the cost of collecting the trace.
type nullTracer struct {
	next   network.EventID
	events int
}

func (t *nullTracer) ref() network.TraceRef {
	t.next++
	t.events++
	return network.TraceRef{ID: t.next, Lamport: uint64(t.next)}
}

func (t *nullTracer) MessageSent(at simtime.Time, from, to int, payload any, cause network.TraceRef) network.TraceRef {
	return t.ref()
}

func (t *nullTracer) MessageDelivered(at simtime.Time, from, to int, payload any, send network.TraceRef) network.TraceRef {
	return t.ref()
}

func (t *nullTracer) TimerFired(at simtime.Time, node, kind int, cause network.TraceRef) network.TraceRef {
	return t.ref()
}

func (t *nullTracer) Decision(at simtime.Time, node int, reason string, cause network.TraceRef) network.TraceRef {
	return t.ref()
}

func benchTracerHook(b *testing.B, attach bool) {
	var events int
	for i := 0; i < b.N; i++ {
		env := traceBenchEnv(i)
		var nt *nullTracer
		if attach {
			nt = &nullTracer{}
			env.Tracer = nt
		}
		rep, err := Run(env, Election{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Leaders != 1 {
			b.Fatalf("leaders = %d", rep.Leaders)
		}
		if attach {
			events += nt.events
		}
	}
	if attach && events == 0 {
		b.Fatal("tracer hook never fired")
	}
}

// BenchmarkTracerDetached is the baseline leg of the gated hook pair.
func BenchmarkTracerDetached(b *testing.B) { benchTracerHook(b, false) }

// BenchmarkTracerAttached runs the same workload with a null Tracer
// installed: every event pays the hook dispatch and cause threading, but
// nothing is recorded.
func BenchmarkTracerAttached(b *testing.B) { benchTracerHook(b, true) }

func benchTracedElection(b *testing.B, traced bool) {
	var events int
	for i := 0; i < b.N; i++ {
		env := traceBenchEnv(i)
		if traced {
			env.Trace = &trace.Config{}
		}
		rep, err := Run(env, Election{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Leaders != 1 {
			b.Fatalf("leaders = %d", rep.Leaders)
		}
		if traced {
			events += len(rep.Trace.Events)
		}
	}
	if traced && events == 0 {
		b.Fatal("traced runs recorded no events")
	}
}

// BenchmarkElectionUntraced is the baseline leg of the published pair.
func BenchmarkElectionUntraced(b *testing.B) { benchTracedElection(b, false) }

// BenchmarkElectionTraced records every kernel event with full causal
// attribution and exports the trace.
func BenchmarkElectionTraced(b *testing.B) { benchTracedElection(b, true) }
