package runner

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"abenet/internal/trace"
	"abenet/internal/trace/causal"
)

// TestTraceMetadataMatchesEngines runs every registered protocol under a
// trace config: each must either honour it (metadata says capable) or
// reject it with the typed sentinel — never silently return no trace.
func TestTraceMetadataMatchesEngines(t *testing.T) {
	for _, name := range Protocols() {
		info, _ := ProtocolInfo(name)
		p, _ := NewInstance(name)
		env := Env{N: 4, Seed: 1, Horizon: 2000, Trace: &trace.Config{}}
		rep, err := Run(env, p)
		switch {
		case info.SupportsTrace && err != nil:
			t.Errorf("%s: metadata says trace supported, Run failed: %v", name, err)
		case info.SupportsTrace && (rep.Trace == nil || len(rep.Trace.Events) == 0):
			t.Errorf("%s: metadata says trace supported, report carries no trace", name)
		case !info.SupportsTrace && !errors.Is(err, ErrTraceUnsupported):
			t.Errorf("%s: metadata says no trace support, Run = %v, want ErrTraceUnsupported", name, err)
		}
	}
}

// TestTracedRunByteIdentical is the golden pin behind the tracer design:
// the recorder only appends to its own storage and the payload tag is
// opaque to every link type, so a traced run must be byte-identical to an
// untraced one at the same (Env, seed) — same report, same metrics — for
// every trace-capable protocol.
func TestTracedRunByteIdentical(t *testing.T) {
	for _, info := range Infos() {
		if !info.SupportsTrace {
			continue
		}
		name := info.Name
		execute := func(tc *trace.Config) Report {
			p, ok := NewInstance(name)
			if !ok {
				t.Fatalf("%s: no registry instance", name)
			}
			rep, err := Run(Env{N: 5, Seed: 7, Horizon: 5000, Trace: tc}, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return rep
		}
		plain := execute(nil)
		traced := execute(&trace.Config{})

		if traced.Trace == nil || len(traced.Trace.Events) == 0 {
			t.Errorf("%s: traced run produced no events", name)
			continue
		}
		if plain.Trace != nil {
			t.Errorf("%s: untraced run carries a trace", name)
		}
		if !reflect.DeepEqual(plain.Metrics(), traced.Metrics()) {
			t.Errorf("%s: traced metrics differ from untraced:\n  %v\n  %v",
				name, plain.Metrics(), traced.Metrics())
		}
		traced.Trace = nil
		if !reflect.DeepEqual(plain, traced) {
			t.Errorf("%s: traced report differs from untraced:\n  %+v\n  %+v", name, plain, traced)
		}
	}
}

// TestTracedExportDeterministic: the exported trace is a pure function of
// (Env, seed) — byte-identical across sequential repeats and across
// concurrent runs (the sweep-worker situation), in every export format.
func TestTracedExportDeterministic(t *testing.T) {
	render := func() (chrome, jsonl, text []byte) {
		p, _ := NewInstance("election")
		rep, err := Run(Env{N: 8, Seed: 11, Horizon: 5000, Trace: &trace.Config{}}, p)
		if err != nil {
			t.Error(err)
			return nil, nil, nil
		}
		var c, j, x bytes.Buffer
		if err := trace.WriteChrome(&c, rep.Trace); err != nil {
			t.Error(err)
		}
		if err := trace.WriteJSONL(&j, rep.Trace); err != nil {
			t.Error(err)
		}
		if err := trace.WriteText(&x, rep.Trace); err != nil {
			t.Error(err)
		}
		return c.Bytes(), j.Bytes(), x.Bytes()
	}

	baseChrome, baseJSONL, baseText := render()
	if len(baseChrome) == 0 || len(baseJSONL) == 0 || len(baseText) == 0 {
		t.Fatal("empty export")
	}

	// Sequential repeats (fresh heap scheduler each time).
	for i := 0; i < 3; i++ {
		c, j, x := render()
		if !bytes.Equal(c, baseChrome) || !bytes.Equal(j, baseJSONL) || !bytes.Equal(x, baseText) {
			t.Fatalf("repeat %d: exported trace diverged", i)
		}
	}

	// Concurrent repeats: how sweep workers (-workers > 1) run traced
	// specs. Each run owns its recorder; concurrency must not leak in.
	const workers = 4
	results := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, _, _ := render()
			results[w] = c
		}(w)
	}
	wg.Wait()
	for w, c := range results {
		if !bytes.Equal(c, baseChrome) {
			t.Fatalf("worker %d: exported trace diverged", w)
		}
	}
}

// TestTraceTruncationKeepsDecision pins the cap-exemption rule (the trace
// analogue of the probe package's Final-sample rule): however small the
// cap, a run that decided still exports the decision event, so the causal
// analysis always has its terminus.
func TestTraceTruncationKeepsDecision(t *testing.T) {
	p, _ := NewInstance("election")
	rep, err := Run(Env{N: 8, Seed: 3, Horizon: 5000, Trace: &trace.Config{MaxEvents: 8}}, p)
	if err != nil {
		t.Fatal(err)
	}
	exp := rep.Trace
	if exp.Dropped == 0 {
		t.Fatal("cap of 8 did not truncate an n=8 election trace")
	}
	if exp.Decision == 0 {
		t.Fatal("truncated trace lost the decision ID")
	}
	last := exp.Events[len(exp.Events)-1]
	if trace.ParseKind(last.Kind) != trace.KindDecision || last.ID != exp.Decision {
		t.Fatalf("last stored event = %+v, want the decision #%d", last, exp.Decision)
	}
	if len(exp.Events) != 9 {
		t.Fatalf("stored %d events, want 8 capped + 1 exempt decision", len(exp.Events))
	}
	// The analysis still walks back from the decision even though most of
	// its ancestry was dropped.
	if p := causal.Analyze(exp).CriticalPath(); p == nil || p.Target != exp.Decision {
		t.Fatalf("critical path of truncated trace = %+v, want target #%d", p, exp.Decision)
	}
}

// TestEnvValidateTrace pins the environment-level typed errors.
func TestEnvValidateTrace(t *testing.T) {
	bad := Env{N: 4, Trace: &trace.Config{MaxEvents: -1}}
	if err := bad.Validate(); !errors.Is(err, ErrEnvTrace) {
		t.Fatalf("negative cap: Validate = %v, want ErrEnvTrace", err)
	}
	both := Env{N: 4, Tracer: trace.NewRecorder(0), Trace: &trace.Config{}}
	if err := both.Validate(); !errors.Is(err, ErrEnvTrace) {
		t.Fatalf("Trace+Tracer: Validate = %v, want ErrEnvTrace", err)
	}
	if err := (Env{N: 4, Trace: &trace.Config{MaxEvents: 64}}).Validate(); err != nil {
		t.Fatalf("valid trace env rejected: %v", err)
	}
}

// TestTracedElectionHopBound checks the paper's d+1 relay bound end to end
// on a real traced election: no relay chain exceeds n (= d+1 on the
// embedded ring, d = n−1), no chain is longer than its payload's own hop
// counter, and the critical path's hop depth respects the bound too.
func TestTracedElectionHopBound(t *testing.T) {
	const n = 12
	p, _ := NewInstance("election")
	rep, err := Run(Env{N: n, Seed: 5, Horizon: 50000, Trace: &trace.Config{}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := RequireElected(rep); err != nil {
		t.Fatal(err)
	}
	a := causal.Analyze(rep.Trace)
	if v := a.CheckHopBound(n); len(v) > 0 {
		t.Fatalf("hop-bound violations:\n%v", v)
	}
	path := a.CriticalPath()
	if path == nil || path.Target != rep.Trace.Decision {
		t.Fatalf("critical path = %+v, want a path to the decision", path)
	}
	if path.Hops > n {
		t.Fatalf("critical path hop depth %d exceeds d+1 = %d", path.Hops, n)
	}
	if path.Total <= 0 {
		t.Fatalf("critical path total time = %g, want > 0", path.Total)
	}
	// The edge-time split is exhaustive.
	if diff := path.Total - (path.MessageTime + path.LocalTime); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("edge split %g + %g does not sum to total %g",
			path.MessageTime, path.LocalTime, path.Total)
	}
}
