package runner

import (
	"fmt"
	"time"

	"abenet/internal/channel"
	"abenet/internal/core"
	"abenet/internal/election"
	"abenet/internal/live"
	"abenet/internal/synchronizer"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// Election is the paper's probabilistic leader election for anonymous
// unidirectional ABE rings (Section 3). It honours every Env field; on
// non-ring topologies it runs along the embedded Hamiltonian cycle.
// Extra: ElectionExtra.
type Election struct {
	// A0 is the base activation parameter in (0, 1). 0 means the balanced
	// default A0ForRing(n, δ, tick, 1) — the paper's linear-complexity
	// parameterisation for the environment's mean delay.
	A0 float64
	// TickInterval is the local tick period; 0 means 1.
	TickInterval float64
	// ConstantActivation enables the E5 ablation (constant wake-up rate).
	ConstantActivation bool
	// KeepRunning disables stop-on-leader; requires a finite Env.Horizon.
	KeepRunning bool
	// RecandidacyTimeout, when positive, lets passive nodes rejoin as
	// candidates after that many message-free local clock units. This is
	// the opt-in liveness patch for fault plans that can wedge the
	// election (a healed partition leaves every survivor passive and no
	// token alive); choose it large against n·δ. 0 keeps the paper's
	// passive-forever rule and byte-identical runs.
	RecandidacyTimeout float64
}

// Name implements Protocol.
func (Election) Name() string { return "election" }

// Run implements Protocol.
func (p Election) Run(env Env) (Report, error) {
	n, err := env.size()
	if err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	a0 := p.A0
	if a0 == 0 {
		tick := p.TickInterval
		if tick == 0 {
			tick = 1
		}
		delta := env.meanDelay()
		if !(delta > 0) {
			return Report{}, fmt.Errorf("runner: cannot derive a default A0 for mean delay %g; set Election.A0 explicitly", delta)
		}
		a0 = core.A0ForRing(n, delta, tick, 1)
	}
	res, err := core.RunElection(core.ElectionConfig{
		N:                  env.graphlessN(),
		Graph:              env.Graph,
		A0:                 a0,
		Delay:              env.Delay,
		Links:              env.Links,
		Clocks:             env.Clocks,
		Processing:         env.Processing,
		TickInterval:       p.TickInterval,
		ConstantActivation: p.ConstantActivation,
		KeepRunning:        p.KeepRunning,
		RecandidacyTimeout: p.RecandidacyTimeout,
		Horizon:            env.Horizon,
		MaxEvents:          env.MaxEvents,
		Seed:               env.Seed,
		Scheduler:          env.Scheduler,
		Tracer:             env.Tracer,
		Faults:             env.Faults,
		Observe:            env.Observe,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Elected:       res.Elected,
		LeaderIndex:   res.LeaderIndex,
		Leaders:       res.Leaders,
		Messages:      res.Messages,
		Transmissions: res.Transmissions,
		Time:          res.Time,
		Events:        res.Events,
		Violations:    res.Violations,
		Params:        res.Params,
		Faults:        res.Faults,
		Series:        res.Series,
		Extra: ElectionExtra{
			Activations:    res.Activations,
			Knockouts:      res.Knockouts,
			ResidualPurges: res.ResidualPurges,
			Recandidacies:  res.Recandidacies,
			StalePurges:    res.StalePurges,
		},
	}, nil
}

// graphlessN returns N for engine configs that treat Graph and N as
// alternatives: 0 when a graph is set (the engine reads the graph's size).
func (e Env) graphlessN() int {
	if e.Graph != nil {
		return 0
	}
	return e.N
}

// ItaiRodehSync is the phase-based Itai–Rodeh style election for anonymous
// *synchronous* rings — the "most optimal" synchronous baseline the paper
// compares against. It runs on the native round engine: Env.Delay, Links,
// Clocks and Processing do not apply (the synchronous model has no delays);
// Env.MaxRounds bounds the run (0 means 1000·n).
type ItaiRodehSync struct {
	// Q is the per-phase candidacy probability; 0 means the balanced 1/n.
	Q float64
}

// Name implements Protocol.
func (ItaiRodehSync) Name() string { return "itai-rodeh-sync" }

// Run implements Protocol.
func (p ItaiRodehSync) Run(env Env) (Report, error) {
	if _, err := env.size(); err != nil {
		return Report{}, err
	}
	if err := env.rejectFaults(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectObserve(p.Name()); err != nil {
		return Report{}, err
	}
	res, err := election.RunItaiRodehSyncConfig(election.ItaiRodehSyncConfig{
		N:         env.graphlessN(),
		Graph:     env.Graph,
		Q:         p.Q,
		Seed:      env.Seed,
		MaxRounds: env.MaxRounds,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Elected:     res.Elected,
		LeaderIndex: res.LeaderIndex,
		Leaders:     res.Leaders,
		Messages:    res.Messages,
		Rounds:      res.Rounds,
	}, nil
}

// ItaiRodehAsync is the classic Itai–Rodeh election for anonymous
// asynchronous rings with FIFO channels (Θ(n log n) expected messages).
// Env.Links, when set, must preserve per-link FIFO order; nil applies the
// FIFO discipline to Env.Delay.
type ItaiRodehAsync struct{}

// Name implements Protocol.
func (ItaiRodehAsync) Name() string { return "itai-rodeh-async" }

// Run implements Protocol.
func (ItaiRodehAsync) Run(env Env) (Report, error) {
	if err := env.rejectAdversary(ItaiRodehAsync{}.Name()); err != nil {
		return Report{}, err
	}
	res, err := election.RunItaiRodehAsync(election.AsyncRingConfig{
		N:          env.graphlessN(),
		Graph:      env.Graph,
		Delay:      env.Delay,
		Links:      env.Links,
		Clocks:     env.Clocks,
		Processing: env.Processing,
		Seed:       env.Seed,
		Scheduler:  env.Scheduler,
		Horizon:    env.Horizon,
		MaxEvents:  env.MaxEvents,
		Tracer:     env.Tracer,
		Faults:     env.Faults,
		Observe:    env.Observe,
	})
	if err != nil {
		return Report{}, err
	}
	return asyncRingReport(res), nil
}

// asyncRingReport converts the shared asynchronous-baseline result.
func asyncRingReport(res election.AsyncRingResult) Report {
	return Report{
		Elected:     res.Elected,
		LeaderIndex: res.LeaderIndex,
		Leaders:     res.Leaders,
		Messages:    res.Messages,
		Time:        res.Time,
		Events:      res.Events,
		Faults:      res.Faults,
		Series:      res.Series,
	}
}

// ChangRoberts is the identity-based Chang–Roberts election on
// asynchronous rings (Θ(n log n) average, Θ(n²) worst case).
type ChangRoberts struct {
	// Arrangement selects the identity layout; 0 means random.
	Arrangement election.ChangRobertsArrangement
}

// Name implements Protocol.
func (ChangRoberts) Name() string { return "chang-roberts" }

// Run implements Protocol.
func (p ChangRoberts) Run(env Env) (Report, error) {
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	res, err := election.RunChangRoberts(changRobertsConfig(env, p.Arrangement))
	if err != nil {
		return Report{}, err
	}
	return asyncRingReport(res), nil
}

// Peterson is Peterson's deterministic O(n log n) election for
// asynchronous unidirectional rings with unique identities and FIFO
// channels. Env.Links, when set, must preserve per-link FIFO order.
type Peterson struct {
	// Arrangement selects the identity layout; 0 means random.
	Arrangement election.ChangRobertsArrangement
}

// Name implements Protocol.
func (Peterson) Name() string { return "peterson" }

// Run implements Protocol.
func (p Peterson) Run(env Env) (Report, error) {
	// Peterson's step protocol requires reliable FIFO channels and panics
	// on gaps; every fault axis violates that contract, so reject plans
	// instead of reporting a crash as a measurement.
	if err := env.rejectFaults(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	res, err := election.RunPeterson(changRobertsConfig(env, p.Arrangement))
	if err != nil {
		return Report{}, err
	}
	return asyncRingReport(res), nil
}

func changRobertsConfig(env Env, a election.ChangRobertsArrangement) election.ChangRobertsConfig {
	return election.ChangRobertsConfig{
		N:           env.graphlessN(),
		Graph:       env.Graph,
		Arrangement: a,
		Delay:       env.Delay,
		Links:       env.Links,
		Clocks:      env.Clocks,
		Processing:  env.Processing,
		Seed:        env.Seed,
		Scheduler:   env.Scheduler,
		Horizon:     env.Horizon,
		MaxEvents:   env.MaxEvents,
		Tracer:      env.Tracer,
		Faults:      env.Faults,
		Observe:     env.Observe,
	}
}

// Synchronized executes an arbitrary synchronous protocol over the
// asynchronous ABE environment via a message-driven synchronizer — the
// machinery behind Theorem 1's n-messages-per-round cost. Extra: SyncExtra.
type Synchronized struct {
	// Kind selects the synchronizer; 0 means the round synchronizer.
	Kind synchronizer.Kind
	// ClusterRadius is the γ-synchronizer's BFS radius; 0 means 2.
	ClusterRadius int
	// Anonymous forbids protocol identity reads.
	Anonymous bool
	// MakeNode builds the synchronous protocol instance per node.
	// Required.
	MakeNode func(i int) syncnet.Node
}

// Name implements Protocol.
func (Synchronized) Name() string { return "synchronized" }

// Run implements Protocol.
func (p Synchronized) Run(env Env) (Report, error) {
	if p.MakeNode == nil {
		return Report{}, fmt.Errorf("runner: synchronized protocol needs a MakeNode constructor")
	}
	if err := env.rejectFaults(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectObserve(p.Name()); err != nil {
		return Report{}, err
	}
	kind := p.Kind
	if kind == 0 {
		kind = synchronizer.KindRound
	}
	graph, err := env.graph()
	if err != nil {
		return Report{}, err
	}
	var nodes []syncnet.Node
	res, err := synchronizer.Run(synchronizer.Config{
		Kind:          kind,
		Graph:         graph,
		Links:         env.linkFactory(channel.RandomDelayFactory),
		Clocks:        env.Clocks,
		ClusterRadius: p.ClusterRadius,
		MaxRounds:     env.MaxRounds,
		MaxEvents:     env.MaxEvents,
		Seed:          env.Seed,
		Scheduler:     env.Scheduler,
		Anonymous:     p.Anonymous,
	}, func(i int) syncnet.Node {
		node := p.MakeNode(i)
		nodes = append(nodes, node)
		return node
	})
	if err != nil {
		return Report{}, err
	}
	rep := syncReport(res)
	// Count leaders when the synchronous protocol reports them.
	rep.LeaderIndex = -1
	for i, node := range nodes {
		if lr, ok := node.(interface{ IsLeader() bool }); ok && lr.IsLeader() {
			rep.Leaders++
			rep.LeaderIndex = i
		}
	}
	rep.Elected = rep.Leaders > 0
	return rep, nil
}

// syncReport converts a synchronizer result into the common shape.
func syncReport(res synchronizer.Result) Report {
	return Report{
		Messages: res.Messages,
		Rounds:   res.Rounds,
		Time:     res.Time,
		Extra: SyncExtra{
			MinRounds:        res.MinRounds,
			PayloadMessages:  res.PayloadMessages,
			MessagesPerRound: res.MessagesPerRound,
			Stopped:          res.Stopped,
			StopCause:        res.StopCause,
		},
	}
}

// SynchronizedElection runs the synchronous Itai–Rodeh election over a
// synchronizer on the ABE environment — the paper's "synchronous
// algorithms lose their message complexity" workload (E8b). Extra:
// SyncExtra.
type SynchronizedElection struct {
	// Kind selects the synchronizer; 0 means the round synchronizer.
	Kind synchronizer.Kind
	// Q is the per-phase candidacy probability; 0 means the balanced 1/n.
	Q float64
}

// Name implements Protocol.
func (SynchronizedElection) Name() string { return "synchronized-election" }

// Run implements Protocol.
func (p SynchronizedElection) Run(env Env) (Report, error) {
	n, err := env.size()
	if err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectObserve(p.Name()); err != nil {
		return Report{}, err
	}
	// On non-ring topologies the election's tokens must follow the
	// embedded Hamiltonian cycle, exactly as the native ring protocols do.
	var ports []int
	if env.Graph != nil {
		ports, err = env.Graph.RingEmbedding()
		if err != nil {
			return Report{}, fmt.Errorf("runner: %w", err)
		}
	}
	q := p.Q
	if q == 0 {
		q = 1 / float64(n)
	}
	if env.MaxRounds == 0 {
		env.MaxRounds = 100_000
	}
	var buildErr error
	rep, err := Synchronized{
		Kind:      p.Kind,
		Anonymous: true,
		MakeNode: func(i int) syncnet.Node {
			node, err := election.NewItaiRodehSyncNode(n, q)
			if err != nil {
				buildErr = err
				return brokenSyncNode{}
			}
			if ports != nil {
				node.SetSendPort(ports[i])
			}
			return node
		},
	}.Run(env)
	if buildErr != nil {
		return Report{}, buildErr
	}
	return rep, err
}

// brokenSyncNode is a placeholder while aborting construction.
type brokenSyncNode struct{}

func (brokenSyncNode) Round(syncnet.NodeContext, int, []syncnet.Message) {}

// ClockSync is the clock-driven (Tel–Korach–Zaks style) ABD synchronizer
// workload: zero control messages, trusting a hard delay bound that ABE
// networks do not have. Extra: ClockSyncExtra.
type ClockSync struct {
	// Period is the local time between round starts; 0 means twice the
	// environment's mean delay.
	Period float64
	// Rounds is how many rounds each node runs; 0 means 100. Env.MaxRounds,
	// when set, caps the count either way.
	Rounds int
}

// Name implements Protocol.
func (ClockSync) Name() string { return "clock-sync" }

// Run implements Protocol.
func (p ClockSync) Run(env Env) (Report, error) {
	if err := env.rejectFaults(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectObserve(p.Name()); err != nil {
		return Report{}, err
	}
	graph, err := env.graph()
	if err != nil {
		return Report{}, err
	}
	period := p.Period
	if period == 0 {
		period = 2 * env.meanDelay()
	}
	rounds := p.Rounds
	if rounds == 0 {
		rounds = 100
	}
	if env.MaxRounds > 0 && rounds > env.MaxRounds {
		rounds = env.MaxRounds
	}
	res, err := synchronizer.RunClockSync(synchronizer.ClockSyncConfig{
		Graph:     graph,
		Delay:     env.Delay,
		Links:     env.Links,
		Period:    period,
		Rounds:    rounds,
		Clocks:    env.Clocks,
		Seed:      env.Seed,
		Scheduler: env.Scheduler,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Messages: res.Messages,
		Rounds:   rounds,
		Time:     res.Time,
		Extra: ClockSyncExtra{
			RoundViolations: res.Violations,
			MaxLateness:     res.MaxLateness,
			ViolationRate:   res.ViolationRate(),
		},
	}, nil
}

// LiveElection runs the paper's election on real goroutines and channels
// with wall-clock delays — intentionally nondeterministic. The environment
// contributes N (a unidirectional ring; Env.Graph must be nil or a plain
// ring) and Seed; the timing model is wall-clock and configured here.
// Extra: LiveExtra; Report.Time is the elapsed wall-clock in seconds.
type LiveElection struct {
	// A0 is the base activation parameter; 0 means the balanced 1/n².
	A0 float64
	// MeanDelay is the expected link delay; 0 means 200µs.
	MeanDelay time.Duration
	// TickEvery is the local tick period; 0 means MeanDelay.
	TickEvery time.Duration
	// Timeout aborts the run; 0 means 30s.
	Timeout time.Duration
}

// Name implements Protocol.
func (LiveElection) Name() string { return "live-election" }

// NondeterministicRuntime marks the live runtime's results as impure
// functions of (Env, seed): wall clocks and the Go scheduler race for
// real, so serving layers must never cache or de-duplicate these runs.
func (LiveElection) NondeterministicRuntime() bool { return true }

// Run implements Protocol.
func (p LiveElection) Run(env Env) (Report, error) {
	n, err := env.size()
	if err != nil {
		return Report{}, err
	}
	if err := env.rejectFaults(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectAdversary(p.Name()); err != nil {
		return Report{}, err
	}
	if err := env.rejectObserve(p.Name()); err != nil {
		return Report{}, err
	}
	if env.Graph != nil && !isUnidirectionalRing(env.Graph) {
		return Report{}, fmt.Errorf("runner: the live runtime only supports the unidirectional ring")
	}
	res, err := live.RunElection(live.ElectionConfig{
		N:         n,
		A0:        p.A0,
		MeanDelay: p.MeanDelay,
		TickEvery: p.TickEvery,
		Timeout:   p.Timeout,
		Seed:      env.Seed,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Elected:     res.Leaders > 0,
		LeaderIndex: res.LeaderIndex,
		Leaders:     res.Leaders,
		Messages:    res.Messages,
		Time:        res.Elapsed.Seconds(),
		Extra:       LiveExtra{Elapsed: res.Elapsed},
	}, nil
}

// isUnidirectionalRing reports whether g is exactly the ring i → (i+1)%n.
func isUnidirectionalRing(g *topology.Graph) bool {
	n := g.N()
	for u := 0; u < n; u++ {
		out := g.Out(u)
		if len(out) != 1 || out[0] != (u+1)%n {
			return false
		}
	}
	return true
}
