package network

import (
	"fmt"
	"reflect"
	"testing"

	"abenet/internal/byzantine"
	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/rng"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// word is a Corruptible test payload: a corrupted copy carries a fresh tag.
type word struct {
	Tag int
}

func (w word) Corrupt(r *rng.Source) any {
	w.Tag = 1000 + r.Intn(1000)
	return w
}

// announcer broadcasts one payload from node 0 at time zero; every node
// records what it received and from which in-port.
type announcer struct {
	id      int
	sender  bool
	payload any
	got     map[int][]any // in-port -> payloads, in delivery order
	gotAt   []simtime.Time
}

func (a *announcer) Init(ctx *Context) {
	a.got = map[int][]any{}
	if a.sender {
		ctx.Broadcast(a.payload)
	}
}

func (a *announcer) OnMessage(ctx *Context, inPort int, payload any) {
	a.got[inPort] = append(a.got[inPort], payload)
	a.gotAt = append(a.gotAt, ctx.Now())
}

func (a *announcer) OnTimer(*Context, int) {}

// buildAnnouncers wires a complete graph where node 0 broadcasts payload.
func buildAnnouncers(t *testing.T, n int, cfg Config, payload any) *Network {
	t.Helper()
	cfg.Graph = topology.Complete(n)
	if !cfg.LocalBroadcast && cfg.Links == nil {
		cfg.Links = channel.RandomDelayFactory(dist.NewExponential(1))
	}
	net, err := New(cfg, func(i int) Node {
		return &announcer{id: i, sender: i == 0, payload: payload}
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func receivedWords(net *Network) []word {
	var out []word
	for i := 1; i < net.N(); i++ {
		for _, msgs := range net.NodeAt(i).(*announcer).got {
			for _, m := range msgs {
				out = append(out, m.(word))
			}
		}
	}
	return out
}

// TestEquivocationDivergesPointToPoint: an Equivocate role on a p2p
// network tells different neighbours different things; on a local-broadcast
// network the medium forces one consistent (corrupted) value — the
// telemetry distinguishes the two.
func TestEquivocationDivergesPointToPoint(t *testing.T) {
	plan := byzantine.Equivocators(1)

	p2p := buildAnnouncers(t, 6, Config{Seed: 7, Byzantine: plan}, word{Tag: 1})
	if err := p2p.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	got := receivedWords(p2p)
	if len(got) != 5 {
		t.Fatalf("p2p receivers got %d messages, want 5", len(got))
	}
	distinct := map[int]bool{}
	for _, w := range got {
		distinct[w.Tag] = true
		if w.Tag == 1 {
			t.Fatal("p2p equivocator leaked the honest payload")
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("p2p equivocation produced a consistent value %v (want divergence)", got)
	}
	tel := p2p.FaultTelemetry()
	if tel == nil || tel.Byzantine == nil {
		t.Fatal("no byzantine telemetry on an adversarial run")
	}
	if tel.Byzantine.Equivocations != 5 || tel.Byzantine.Corruptions != 0 {
		t.Fatalf("p2p telemetry = %+v, want 5 equivocations", tel.Byzantine)
	}

	bc := buildAnnouncers(t, 6, Config{Seed: 7, Byzantine: plan, LocalBroadcast: true}, word{Tag: 1})
	if err := bc.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	got = receivedWords(bc)
	if len(got) != 5 {
		t.Fatalf("broadcast receivers got %d messages, want 5", len(got))
	}
	for _, w := range got[1:] {
		if w != got[0] {
			t.Fatalf("local broadcast delivered divergent values %v — the medium must prevent equivocation", got)
		}
	}
	btel := bc.FaultTelemetry().Byzantine
	if btel.Equivocations != 0 || btel.Corruptions != 1 {
		t.Fatalf("broadcast telemetry = %+v, want 1 corruption, 0 equivocations", btel)
	}
}

// TestLocalBroadcastAtomicInstant: all receivers of one radio transmission
// see it at the same virtual instant.
func TestLocalBroadcastAtomicInstant(t *testing.T) {
	net := buildAnnouncers(t, 5, Config{Seed: 3, LocalBroadcast: true}, word{Tag: 9})
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	var at []simtime.Time
	for i := 1; i < net.N(); i++ {
		a := net.NodeAt(i).(*announcer)
		if len(a.gotAt) != 1 {
			t.Fatalf("node %d received %d messages, want 1", i, len(a.gotAt))
		}
		at = append(at, a.gotAt[0])
	}
	for _, ts := range at[1:] {
		if ts != at[0] {
			t.Fatalf("delivery instants diverge: %v", at)
		}
	}
	m := net.Metrics()
	if m.MessagesSent != 1 || m.Transmissions != 1 || m.MessagesDelivered != 4 {
		t.Fatalf("metrics = %+v, want 1 send / 1 transmission / 4 deliveries", m)
	}
}

// TestSendPanicsOnLocalBroadcast pins the medium discipline.
func TestSendPanicsOnLocalBroadcast(t *testing.T) {
	net, err := New(Config{
		Graph:          topology.Complete(3),
		LocalBroadcast: true,
		Seed:           1,
	}, func(i int) Node { return &pointToPointInit{} })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send on a local-broadcast network did not panic")
		}
	}()
	net.Run(simtime.Forever, 0)
}

type pointToPointInit struct{}

func (pointToPointInit) Init(ctx *Context)            { ctx.Send(0, "x") }
func (pointToPointInit) OnMessage(*Context, int, any) {}
func (pointToPointInit) OnTimer(*Context, int)        {}

// TestMuteAndStallAndCorrupt covers the remaining behaviours.
func TestMuteAndStallAndCorrupt(t *testing.T) {
	// Mute: nothing arrives, the send still counts, omissions recorded.
	mute := buildAnnouncers(t, 4, Config{Seed: 5, Byzantine: &byzantine.Plan{
		Roles: []byzantine.Role{{Node: 0, Behavior: byzantine.Mute}},
	}}, word{Tag: 1})
	if err := mute.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if got := receivedWords(mute); len(got) != 0 {
		t.Fatalf("mute sender delivered %v", got)
	}
	m := mute.Metrics()
	if m.MessagesSent != 3 || m.MessagesDelivered != 0 {
		t.Fatalf("mute metrics = %+v", m)
	}
	if tel := mute.FaultTelemetry().Byzantine; tel.Omissions != 3 {
		t.Fatalf("mute telemetry = %+v, want 3 omissions", tel)
	}

	// Corrupt: consistent substitution per message, but the honest payload
	// never arrives.
	corr := buildAnnouncers(t, 4, Config{Seed: 5, Byzantine: &byzantine.Plan{
		Roles: []byzantine.Role{{Node: 0, Behavior: byzantine.Corrupt}},
	}}, word{Tag: 1})
	if err := corr.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	got := receivedWords(corr)
	if len(got) != 3 {
		t.Fatalf("corrupt run delivered %d, want 3", len(got))
	}
	for _, w := range got {
		if w.Tag == 1 {
			t.Fatal("corrupt role leaked the honest payload")
		}
	}
	if tel := corr.FaultTelemetry().Byzantine; tel.Corruptions != 3 {
		t.Fatalf("corrupt telemetry = %+v, want 3 corruptions", tel)
	}

	// Stall: payloads arrive intact but strictly later than the honest
	// baseline's latest delivery.
	baseline := buildAnnouncers(t, 4, Config{Seed: 5}, word{Tag: 1})
	if err := baseline.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	var honestLast simtime.Time
	for i := 1; i < baseline.N(); i++ {
		for _, ts := range baseline.NodeAt(i).(*announcer).gotAt {
			if ts.After(honestLast) {
				honestLast = ts
			}
		}
	}
	stall := buildAnnouncers(t, 4, Config{Seed: 5, Byzantine: &byzantine.Plan{
		Roles: []byzantine.Role{{Node: 0, Behavior: byzantine.Stall, StallDelay: dist.NewDeterministic(50)}},
	}}, word{Tag: 1})
	if err := stall.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	got = receivedWords(stall)
	if len(got) != 3 {
		t.Fatalf("stall run delivered %d, want 3", len(got))
	}
	for _, w := range got {
		if w.Tag != 1 {
			t.Fatalf("stall role altered the payload: %v", w)
		}
	}
	for i := 1; i < stall.N(); i++ {
		for _, ts := range stall.NodeAt(i).(*announcer).gotAt {
			if !ts.After(honestLast) {
				t.Fatalf("stalled delivery at %v not after honest last %v", ts, honestLast)
			}
		}
	}
	if tel := stall.FaultTelemetry().Byzantine; tel.Stalls != 3 {
		t.Fatalf("stall telemetry = %+v, want 3 stalls", tel)
	}
}

// TestNilByzantinePlanByteIdentical: a nil plan must not perturb a run in
// any way (the adversary-free determinism contract), and a plan on
// non-Corruptible payloads passes them through untouched.
func TestNilByzantinePlanByteIdentical(t *testing.T) {
	render := func(cfg Config) string {
		net := buildAnnouncers(t, 5, cfg, "opaque")
		if err := net.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		var state []any
		for i := 0; i < net.N(); i++ {
			state = append(state, net.NodeAt(i).(*announcer).got, net.NodeAt(i).(*announcer).gotAt)
		}
		return fmt.Sprint(net.Metrics(), net.Now(), state)
	}
	plain := render(Config{Seed: 11})
	again := render(Config{Seed: 11})
	if plain != again {
		t.Fatal("plain run not deterministic")
	}
	// An equivocator that cannot parse the payload must leave the entire
	// run byte-identical except for telemetry presence: "opaque" is not
	// Corruptible, and Prob 1 draws nothing from any shared stream.
	adversarial := render(Config{Seed: 11, Byzantine: byzantine.Equivocators(1)})
	if adversarial != plain {
		t.Fatalf("non-Corruptible payloads must pass through unchanged:\n%s\n%s", plain, adversarial)
	}
}

// TestByzantineRejectsInvalidPlan: plan validation surfaces from New.
func TestByzantineRejectsInvalidPlan(t *testing.T) {
	_, err := New(Config{
		Graph:     topology.Complete(3),
		Links:     channel.RandomDelayFactory(dist.NewExponential(1)),
		Byzantine: &byzantine.Plan{Roles: []byzantine.Role{{Node: 9, Behavior: byzantine.Mute}}},
	}, func(i int) Node { return &announcer{} })
	if err == nil {
		t.Fatal("invalid byzantine plan accepted")
	}
}

// TestBroadcastFallsBackToSendLoop: on a point-to-point network Broadcast
// is a loop over Send, one independent delay per receiver.
func TestBroadcastFallsBackToSendLoop(t *testing.T) {
	net := buildAnnouncers(t, 5, Config{Seed: 2}, word{Tag: 4})
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	m := net.Metrics()
	if m.MessagesSent != 4 || m.MessagesDelivered != 4 {
		t.Fatalf("p2p broadcast metrics = %+v, want 4 sends / 4 deliveries", m)
	}
	instants := map[simtime.Time]bool{}
	for i := 1; i < net.N(); i++ {
		for _, ts := range net.NodeAt(i).(*announcer).gotAt {
			instants[ts] = true
		}
	}
	if len(instants) < 2 {
		t.Fatalf("p2p broadcast delivered everything at one instant %v — delays should be independent", instants)
	}
}

// TestBroadcastConfigValidation pins the config error paths.
func TestBroadcastConfigValidation(t *testing.T) {
	mk := func(i int) Node { return &announcer{} }
	if _, err := New(Config{
		Graph:          topology.Complete(3),
		LocalBroadcast: true,
		Links:          channel.RandomDelayFactory(dist.NewExponential(1)),
	}, mk); err == nil {
		t.Fatal("LocalBroadcast+Links accepted")
	}
	if _, err := New(Config{
		Graph:          topology.Complete(3),
		LocalBroadcast: true,
		Faults:         &faults.Plan{Loss: 0.5},
	}, mk); err == nil {
		t.Fatal("LocalBroadcast+link faults accepted")
	}
}

// TestAdversaryDeterminism: same seed, same plan — identical intervention
// telemetry and traffic, including under concurrent replay.
func TestAdversaryDeterminism(t *testing.T) {
	run := func() string {
		plan := &byzantine.Plan{Roles: []byzantine.Role{
			{Node: 0, Behavior: byzantine.Equivocate, Prob: 0.6},
			{Node: 1, Behavior: byzantine.Stall, Prob: 0.4},
		}}
		net := buildAnnouncers(t, 6, Config{Seed: 99, Byzantine: plan}, word{Tag: 3})
		if err := net.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(receivedWords(net), *net.FaultTelemetry().Byzantine, net.Metrics(), net.Now())
	}
	first := run()
	results := make(chan string, 4)
	for i := 0; i < 4; i++ {
		go func() { results <- run() }()
	}
	for i := 0; i < 4; i++ {
		if got := <-results; got != first {
			t.Fatalf("adversarial run diverged:\n%s\n%s", first, got)
		}
	}
	if !reflect.DeepEqual(first, run()) {
		t.Fatal("sequential replay diverged")
	}
}
