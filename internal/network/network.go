// Package network executes message-passing protocols on simulated networks.
//
// A Network wires a topology, a link factory (delay model), a clock model
// and a processing-time model onto the discrete-event kernel, and runs one
// protocol instance per node. The three ABE quantities of Definition 1 are
// all first-class here:
//
//	δ — every link reports the exact mean of its delay distribution;
//	    MaxLinkMeanDelay() is the network's tightest valid δ.
//	s_low, s_high — the clock model declares its rate bounds.
//	γ — the processing-time distribution's mean.
//
// Protocols interact with the world only through a Context: local ports,
// local timers in local clock time, a private random stream, and the known
// ring size n. Networks can be declared anonymous, in which case reading
// the node identity panics — the simulator enforces the paper's anonymity
// assumption mechanically.
package network

import (
	"errors"
	"fmt"

	"abenet/internal/byzantine"
	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// Node is the behaviour of one protocol instance. Implementations must be
// deterministic given the Context's random stream.
type Node interface {
	// Init runs once at time zero, before any message flows.
	Init(ctx *Context)
	// OnMessage handles a message delivered on the given local in-port.
	OnMessage(ctx *Context, inPort int, payload any)
	// OnTimer handles a timer set via Context.SetLocalTimer.
	OnTimer(ctx *Context, kind int)
}

// EventID identifies one recorded trace event. IDs are assigned by the
// Tracer implementation; 0 means "no event" (an untraced cause, or a root
// event with no recorded parent).
type EventID int64

// TraceRef names a recorded trace event together with its Lamport clock.
// The network threads refs through the causal chain — each Tracer callback
// receives the ref of the event that caused the one being recorded, and
// returns the ref of the event it recorded — so attribution is exact: a
// delivery is parented to the send that produced it (the ref rides across
// the link with the payload), and a send or timer is parented to the
// delivery or timer the node was processing when it emitted it. Carrying
// the Lamport clock inside the ref lets an implementation merge clocks on
// delivery without keeping per-event state alive past its storage cap.
// The zero TraceRef marks a causal root (e.g. a send from Node.Init).
type TraceRef struct {
	ID      EventID
	Lamport uint64
}

// Tracer observes network events and assigns each a causal identity.
// Implementations must not mutate protocol state, and must not schedule or
// cancel kernel events — a traced run must stay byte-identical to an
// untraced one. A nil Tracer disables tracing. Each method returns the ref
// of the event it recorded so the network can hand it to causally
// downstream events; cause (resp. send, parent) is the ref of the event
// that led to this one, zero for causal roots.
type Tracer interface {
	// MessageSent records a logical send from node from to node to (-1 for
	// a radio broadcast). cause is the event the sender was processing.
	MessageSent(at simtime.Time, from, to int, payload any, cause TraceRef) TraceRef
	// MessageDelivered records a delivery; send is the ref returned by the
	// MessageSent that produced this payload (zero if the payload predates
	// tracing, which cannot happen under a Tracer fixed at construction).
	MessageDelivered(at simtime.Time, from, to int, payload any, send TraceRef) TraceRef
	// TimerFired records a local timer firing; cause is the event the node
	// was processing when it set the timer.
	TimerFired(at simtime.Time, node, kind int, cause TraceRef) TraceRef
	// Decision records the protocol's terminal event: a node stopped the
	// network (Context.StopNetwork), e.g. because a leader was elected.
	// cause is the event being processed when the protocol decided.
	Decision(at simtime.Time, node int, reason string, cause TraceRef) TraceRef
}

// tracedPayload tags a payload crossing a link with the ref of the send
// event that produced it, so the delivery at the far end can name its
// exact cause. Links treat payloads as opaque values — the tag changes no
// delay sampling and no scheduling, which is what keeps a traced run
// byte-identical to an untraced one. Payloads are tagged after the
// Byzantine intercept (a corrupting adversary replaces the payload; the
// tag must survive on whatever actually crosses the link) and stripped in
// deliverTo before the protocol sees them.
type tracedPayload struct {
	payload any
	send    TraceRef
}

// Metrics aggregates network-wide counters.
type Metrics struct {
	MessagesSent      uint64 // logical sends (each hop of a travelling token counts once)
	MessagesDelivered uint64
	Transmissions     uint64 // physical transmissions including ARQ retries
	TimersFired       uint64
}

// Config describes a network to build.
type Config struct {
	// Graph is the communication topology. Required.
	Graph *topology.Graph
	// Links builds one link per directed edge. Required.
	Links channel.Factory
	// Clocks assigns local clocks. Nil means perfect unit-rate clocks.
	Clocks clock.Model
	// Processing is the per-event processing-time distribution (the γ
	// model). Nil means instantaneous processing.
	Processing dist.Dist
	// Seed determines every random choice in the run.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation by name
	// (sim.SchedulerHeap, sim.SchedulerCalendar). Empty means the default
	// heap. Every scheduler implements the same (time, seq) total order, so
	// runs are byte-identical across choices — this knob trades queue
	// performance characteristics only.
	Scheduler string
	// Anonymous networks panic if a protocol reads a node identity.
	Anonymous bool
	// Tracer observes events; nil disables tracing.
	Tracer Tracer
	// Faults optionally injects deterministic message faults, node churn
	// and link outages (see internal/faults). Nil disables the subsystem
	// entirely: the run is byte-identical to one without it.
	Faults *faults.Plan
	// Byzantine optionally assigns adversarial roles to nodes (see
	// internal/byzantine): equivocation, omission, corruption and
	// stalling, intercepted on the send path. Nil disables the subsystem
	// entirely: the run is byte-identical to one without it.
	Byzantine *byzantine.Plan
	// LocalBroadcast switches the medium to Khan & Vaidya's local-
	// broadcast model: protocols send via Context.Broadcast only (Send
	// panics), and each broadcast is one atomic radio transmission
	// delivered identically to every out-neighbour at one instant. When
	// set, Links must be nil and BroadcastDelay states the medium delay.
	LocalBroadcast bool
	// BroadcastDelay is the per-transmission delay distribution of the
	// local-broadcast medium. Nil means Exponential(1). Ignored unless
	// LocalBroadcast is set.
	BroadcastDelay dist.Dist
}

// Network is a runnable protocol deployment. Create one with New, then Run.
type Network struct {
	cfg      Config
	kernel   *sim.Kernel
	nodes    []Node
	ctxs     []*Context
	links    [][]channel.Link // links[u][i] = link for u's i-th out-port
	allLinks []channel.Link
	clocks   []clock.Clock
	nextFree []simtime.Time // per-node completion time of the busy server
	metrics  Metrics
	procMean float64
	makeNode func(i int) Node          // retained for fault-recovery restarts
	life     *lifecycle                // nil unless cfg.Faults is set
	adv      *adversary                // nil unless cfg.Byzantine is set
	bcast    []*channel.LocalBroadcast // per-node radio links (LocalBroadcast mode)

	// cause is the ref of the trace event whose handler is currently
	// running — the delivery or timer being processed — so that sends,
	// timers and decisions emitted from inside it are parented exactly.
	// The kernel is single-threaded, so a plain field with save/restore
	// around each handler is enough. Always zero when cfg.Tracer is nil.
	cause TraceRef
}

// edgeAddress identifies the receiving side of a directed edge.
type edgeAddress struct {
	from, to, inPort int
}

// New builds a network running makeNode(i) on node i of cfg.Graph.
func New(cfg Config, makeNode func(i int) Node) (*Network, error) {
	if cfg.Graph == nil {
		return nil, errors.New("network: config needs a graph")
	}
	if cfg.LocalBroadcast {
		if cfg.Links != nil {
			return nil, errors.New("network: LocalBroadcast replaces per-edge links; set BroadcastDelay, not Links")
		}
		if cfg.Faults.HasLinkFaults() {
			return nil, errors.New("network: per-message link faults (Loss/Duplicate/Reorder) model point-to-point channels and do not compose with the local-broadcast medium")
		}
		if cfg.BroadcastDelay == nil {
			cfg.BroadcastDelay = dist.NewExponential(1)
		}
	} else if cfg.Links == nil {
		return nil, errors.New("network: config needs a link factory")
	}
	if makeNode == nil {
		return nil, errors.New("network: nil node constructor")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if cfg.Clocks == nil {
		cfg.Clocks = clock.PerfectModel{}
	}

	kernel, err := sim.NewNamed(cfg.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}

	n := cfg.Graph.N()
	root := rng.New(cfg.Seed)
	net := &Network{
		cfg:      cfg,
		kernel:   kernel,
		nodes:    make([]Node, n),
		ctxs:     make([]*Context, n),
		links:    make([][]channel.Link, n),
		clocks:   make([]clock.Clock, n),
		nextFree: make([]simtime.Time, n),
		makeNode: makeNode,
	}
	if cfg.Processing != nil {
		net.procMean = cfg.Processing.Mean()
	}
	if cfg.Faults != nil {
		life, err := newLifecycle(net, cfg.Faults, root)
		if err != nil {
			return nil, fmt.Errorf("network: %w", err)
		}
		net.life = life
		if cfg.Faults.HasLinkFaults() {
			// The interceptor derives its stream off each edge stream, so
			// the inner links sample exactly as they would unwrapped.
			cfg.Links = channel.ImpairedFactory(cfg.Links, impairment(cfg.Faults))
			net.cfg.Links = cfg.Links
		}
	}
	if cfg.Byzantine != nil {
		adv, err := newAdversary(net, cfg.Byzantine, root)
		if err != nil {
			return nil, fmt.Errorf("network: %w", err)
		}
		net.adv = adv
	}

	for i := 0; i < n; i++ {
		net.clocks[i] = cfg.Clocks.NewClock(root.DeriveIndexed("clock", i))
		net.ctxs[i] = &Context{
			net:  net,
			id:   i,
			r:    root.DeriveIndexed("node", i),
			proc: root.DeriveIndexed("proc", i),
		}
		net.nodes[i] = makeNode(i)
		if net.nodes[i] == nil {
			return nil, fmt.Errorf("network: makeNode(%d) returned nil", i)
		}
	}

	// Precompute in-port indices: inPort[to] position of edge from->to.
	inPort := make(map[[2]int]int, cfg.Graph.EdgeCount())
	for v := 0; v < n; v++ {
		for idx, u := range cfg.Graph.In(v) {
			inPort[[2]int{u, v}] = idx
		}
	}

	if cfg.LocalBroadcast {
		// One radio link per sender; the delivery fan-out walks the
		// sender's out-edges at the shared delivery instant. The stream
		// label is distinct from "edge", so switching media re-seeds
		// nothing else.
		net.bcast = make([]*channel.LocalBroadcast, n)
		for u := 0; u < n; u++ {
			out := cfg.Graph.Out(u)
			addrs := make([]edgeAddress, len(out))
			for p, v := range out {
				addrs[p] = edgeAddress{from: u, to: v, inPort: inPort[[2]int{u, v}]}
			}
			lb := channel.NewLocalBroadcast(net.kernel, cfg.BroadcastDelay,
				root.DeriveIndexed("bcast", u), net.fanoutFunc(u, addrs), len(out))
			net.bcast[u] = lb
			net.allLinks = append(net.allLinks, lb)
		}
	} else {
		edgeIndex := 0
		for u := 0; u < n; u++ {
			for _, v := range cfg.Graph.Out(u) {
				addr := edgeAddress{from: u, to: v, inPort: inPort[[2]int{u, v}]}
				link := cfg.Links(net.kernel, root.DeriveIndexed("edge", edgeIndex), net.deliverFunc(addr))
				if link == nil {
					return nil, fmt.Errorf("network: link factory returned nil for edge %d->%d", u, v)
				}
				net.links[u] = append(net.links[u], link)
				net.allLinks = append(net.allLinks, link)
				edgeIndex++
			}
		}
	}
	if net.life != nil {
		net.life.indexPorts()
	}
	return net, nil
}

// deliverFunc returns the link callback delivering into the destination's
// processing queue. Deliveries to a crashed node are suppressed (counted
// as dead letters), deterministically: the suppression depends only on the
// node's fault schedule.
func (net *Network) deliverFunc(addr edgeAddress) channel.DeliverFunc {
	return func(payload any) { net.deliverTo(addr, payload) }
}

// deliverTo delivers one payload at the receiving end of a directed edge.
func (net *Network) deliverTo(addr edgeAddress, payload any) {
	if net.life != nil && net.life.down[addr.to] {
		net.life.tel.DeadLetters++
		return
	}
	net.metrics.MessagesDelivered++
	if net.cfg.Tracer == nil {
		if net.cfg.Processing == nil {
			// Closure-free fast path: with instantaneous processing the
			// queue model is a no-op (process would run the work inline),
			// so the handler can be invoked directly. This is the
			// per-delivery hot path for large untraced runs.
			net.nodes[addr.to].OnMessage(net.ctxs[addr.to], addr.inPort, payload)
			return
		}
		net.process(addr.to, deadLetterCounter, func() {
			net.nodes[addr.to].OnMessage(net.ctxs[addr.to], addr.inPort, payload)
		})
		return
	}
	var send TraceRef
	if tp, ok := payload.(tracedPayload); ok {
		send, payload = tp.send, tp.payload
	}
	ref := net.cfg.Tracer.MessageDelivered(net.kernel.Now(), addr.from, addr.to, payload, send)
	inner := payload
	net.process(addr.to, deadLetterCounter, func() {
		prev := net.cause
		net.cause = ref
		net.nodes[addr.to].OnMessage(net.ctxs[addr.to], addr.inPort, inner)
		net.cause = prev
	})
}

// fanoutFunc returns the radio callback for sender u in local-broadcast
// mode: one call per transmission, fanned out to every out-edge at the
// shared delivery instant. Scripted link outages and partitions are radio
// obstructions here — they are checked per receiving edge at the delivery
// instant (a receiver behind a downed edge misses the transmission, counted
// as a link drop), so a partition cuts a broadcast exactly as it cuts
// point-to-point traffic.
func (net *Network) fanoutFunc(u int, addrs []edgeAddress) channel.DeliverFunc {
	return func(payload any) {
		for p, addr := range addrs {
			if net.life != nil && net.life.portDown(u, p) {
				net.life.tel.LinkDrops++
				continue
			}
			net.deliverTo(addr, payload)
		}
	}
}

// Suppression counters for work that dies in a node's processing queue
// when the node crashes mid-queue: messages count as dead letters, timer
// handlers as suppressed timers.
const (
	deadLetterCounter = iota
	timerCounter
)

// process runs work for node v after the node's processing delay, modelling
// each node as a single busy server: events queue and are handled in FIFO
// completion order. With no processing model the work runs inline. Under
// fault injection, work queued before a crash (or restart) is stale and is
// suppressed at completion time via the node's epoch, charged to the
// counter selected by counterKind.
func (net *Network) process(v, counterKind int, work func()) {
	if net.cfg.Processing == nil {
		work()
		return
	}
	if net.life != nil {
		work = net.life.guard(v, net.life.suppressionCounter(counterKind), work)
	}
	now := net.kernel.Now()
	start := now
	if net.nextFree[v].After(start) {
		start = net.nextFree[v]
	}
	completion := start.Add(simtime.Duration(net.cfg.Processing.Sample(net.ctxs[v].proc)))
	net.nextFree[v] = completion
	net.kernel.AtFunc(completion, work)
}

// Run initialises all nodes (in index order at time zero) and executes the
// simulation. See sim.Kernel.Run for the meaning of horizon and maxEvents.
// A protocol-requested stop (Context.StopNetwork) is a clean completion and
// returns nil.
func (net *Network) Run(horizon simtime.Time, maxEvents uint64) error {
	if net.life != nil {
		net.life.applyAtTimeZero()
	}
	for i, node := range net.nodes {
		if net.life != nil && net.life.down[i] {
			continue // crashed from t = 0: Init runs at recovery, if any
		}
		node.Init(net.ctxs[i])
	}
	if net.life != nil {
		net.life.install()
	}
	err := net.kernel.Run(horizon, maxEvents)
	if errors.Is(err, sim.ErrStopped) {
		return nil
	}
	return err
}

// Now returns the current virtual time.
func (net *Network) Now() simtime.Time { return net.kernel.Now() }

// StopCause returns the cause recorded when the protocol stopped the
// network, or "".
func (net *Network) StopCause() string { return net.kernel.StopCause() }

// Metrics returns a snapshot of the network counters, with transmissions
// aggregated over all links.
func (net *Network) Metrics() Metrics {
	m := net.metrics
	m.Transmissions = 0
	for _, l := range net.allLinks {
		m.Transmissions += l.Stats().Transmissions
	}
	return m
}

// N returns the number of nodes.
func (net *Network) N() int { return len(net.nodes) }

// NodeAt returns the protocol instance on node i, for post-run inspection.
func (net *Network) NodeAt(i int) Node { return net.nodes[i] }

// MaxLinkMeanDelay returns the maximum per-link expected delay — the
// tightest δ for which this network satisfies ABE Definition 1, condition 1.
func (net *Network) MaxLinkMeanDelay() float64 {
	max := 0.0
	for _, l := range net.allLinks {
		if m := l.MeanDelay(); m > max {
			max = m
		}
	}
	return max
}

// ClockBounds returns the clock model's (s_low, s_high).
func (net *Network) ClockBounds() (low, high float64) { return net.cfg.Clocks.Bounds() }

// FaultTelemetry returns a snapshot of the run's fault telemetry (what the
// configured faults.Plan and byzantine.Plan actually did), or nil when the
// network was built without either subsystem.
func (net *Network) FaultTelemetry() *faults.Telemetry {
	if net.life == nil && net.adv == nil {
		return nil
	}
	tel := &faults.Telemetry{}
	if net.life != nil {
		tel = net.life.telemetry()
	}
	if net.adv != nil {
		tel.Byzantine = net.adv.telemetry()
	}
	return tel
}

// NodeDown reports whether node i is currently crashed (always false
// without fault injection).
func (net *Network) NodeDown(i int) bool { return net.life != nil && net.life.down[i] }

// ProcessingMean returns the mean event-processing time — the tightest γ
// for Definition 1, condition 3 (0 if processing is instantaneous).
func (net *Network) ProcessingMean() float64 { return net.procMean }

// Kernel exposes the underlying kernel for tests and advanced drivers.
func (net *Network) Kernel() *sim.Kernel { return net.kernel }

// Context is a node's window onto the network. All methods must be called
// from protocol callbacks (Init, OnMessage, OnTimer) only.
type Context struct {
	net  *Network
	id   int
	r    *rng.Source
	proc *rng.Source

	// timerCache memoises the fire handler per timer kind. Valid only when
	// the network has no fault plan and no tracer: a fault guard captures
	// the node's crash epoch at *set* time and a traced firing captures the
	// setter's causal ref, so those handlers are necessarily per-set.
	// Without either, the handler depends only on (node, kind) and one func
	// value serves every timer of that kind — tick loops set millions.
	timerCache []sim.Handler
}

// maxCachedTimerKinds bounds the per-node handler cache; protocols use
// small dense kind constants, so anything larger falls back to a fresh
// closure rather than growing the cache.
const maxCachedTimerKinds = 64

// N returns the network size. The paper's election algorithm assumes known
// ring size n, so this is part of a node's a-priori knowledge.
func (c *Context) N() int { return c.net.N() }

// ID returns the node's identity. On anonymous networks this panics:
// protocols for anonymous networks must not depend on identities.
func (c *Context) ID() int {
	if c.net.cfg.Anonymous {
		panic("network: protocol read node identity on an anonymous network")
	}
	return c.id
}

// OutDegree returns the number of outgoing ports.
func (c *Context) OutDegree() int { return len(c.net.links[c.id]) }

// InDegree returns the number of incoming ports.
func (c *Context) InDegree() int { return len(c.net.cfg.Graph.In(c.id)) }

// Send transmits payload on the given out-port. A send on a link taken
// down by a scripted outage or partition counts as sent but is dropped at
// the link boundary (messages already in flight still arrive). Under a
// byzantine.Plan the sender's role intercepts the message here — a Mute
// send still counts as sent (the protocol instance believes it sent), and
// a Stall holds the message back before it reaches the link. On a
// local-broadcast network Send panics: the radio medium has no addressable
// point-to-point links; protocols use Broadcast.
func (c *Context) Send(outPort int, payload any) {
	if c.net.cfg.LocalBroadcast {
		panic("network: point-to-point Send on a local-broadcast network (use Context.Broadcast)")
	}
	links := c.net.links[c.id]
	if outPort < 0 || outPort >= len(links) {
		panic(fmt.Sprintf("network: node has %d out-ports, sent on %d", len(links), outPort))
	}
	c.net.metrics.MessagesSent++
	var ref TraceRef
	if c.net.cfg.Tracer != nil {
		to := c.net.cfg.Graph.Out(c.id)[outPort]
		ref = c.net.cfg.Tracer.MessageSent(c.net.kernel.Now(), c.id, to, payload, c.net.cause)
	}
	if adv := c.net.adv; adv != nil {
		out, drop, hold := adv.intercept(c.id, payload, false)
		if drop {
			return
		}
		payload = out
		if hold > 0 {
			c.net.kernel.AfterFunc(hold, func() { c.sendOnPort(outPort, payload, ref) })
			return
		}
	}
	c.sendOnPort(outPort, payload, ref)
}

// sendOnPort puts payload on the outPort link, honouring scripted link
// outages at the (possibly stalled) transmission instant. send is the
// traced ref of the logical send, carried across the link with the payload
// so the delivery can name its cause; zero when tracing is off.
func (c *Context) sendOnPort(outPort int, payload any, send TraceRef) {
	if life := c.net.life; life != nil && life.portDown(c.id, outPort) {
		life.tel.LinkDrops++
		return
	}
	if c.net.cfg.Tracer != nil {
		payload = tracedPayload{payload: payload, send: send}
	}
	c.net.links[c.id][outPort].Send(payload)
}

// Broadcast sends payload to every out-neighbour — the medium-agnostic
// send for broadcast protocols. On a point-to-point network it loops over
// the out-ports: each copy samples its own link delay, and an Equivocate
// role may substitute a *different* payload per receiver. On a
// local-broadcast network it is one atomic radio transmission delivered
// identically to every neighbour at one instant, so per-receiver
// divergence is physically impossible (Khan & Vaidya's model). Tracers see
// one MessageSent with to = -1 for a radio transmission.
func (c *Context) Broadcast(payload any) {
	if !c.net.cfg.LocalBroadcast {
		for p := range c.net.links[c.id] {
			c.Send(p, payload)
		}
		return
	}
	c.net.metrics.MessagesSent++
	traced := c.net.cfg.Tracer != nil
	var ref TraceRef
	if traced {
		ref = c.net.cfg.Tracer.MessageSent(c.net.kernel.Now(), c.id, -1, payload, c.net.cause)
	}
	link := c.net.bcast[c.id]
	if adv := c.net.adv; adv != nil {
		out, drop, hold := adv.intercept(c.id, payload, true)
		if drop {
			return
		}
		payload = out
		if hold > 0 {
			if traced {
				payload = tracedPayload{payload: payload, send: ref}
			}
			stalled := payload
			c.net.kernel.AfterFunc(hold, func() { link.Send(stalled) })
			return
		}
	}
	if traced {
		// One tag shared by the whole radio fan-out: every receiver's
		// delivery is parented to the single atomic transmission.
		payload = tracedPayload{payload: payload, send: ref}
	}
	link.Send(payload)
}

// LocalTime returns the node's local clock reading.
func (c *Context) LocalTime() float64 { return c.net.clocks[c.id].LocalAt(c.net.kernel.Now()) }

// SetLocalTimer schedules OnTimer(kind) to fire when the node's local clock
// has advanced by localDelta (> 0). The returned ticket can cancel it.
// Timers belong to the incarnation that set them: if the node crashes (or
// crashes and restarts) before the fire instant, the fire is suppressed.
// Protocols that never cancel their timers should use SetLocalTimerFunc,
// which skips the ticket allocation.
func (c *Context) SetLocalTimer(localDelta float64, kind int) *sim.Ticket {
	return c.net.kernel.At(c.timerInstant(localDelta), c.timerFire(kind))
}

// SetLocalTimerFunc is SetLocalTimer without a cancellation ticket — the
// allocation-free path for fire-and-forget timers such as tick loops.
func (c *Context) SetLocalTimerFunc(localDelta float64, kind int) {
	c.net.kernel.AtFunc(c.timerInstant(localDelta), c.timerFire(kind))
}

// timerInstant validates localDelta and converts it to the real fire
// instant on the node's local clock.
func (c *Context) timerInstant(localDelta float64) simtime.Time {
	if localDelta <= 0 {
		panic(fmt.Sprintf("network: local timer delta %g must be positive", localDelta))
	}
	return c.net.clocks[c.id].RealAfterLocal(c.net.kernel.Now(), localDelta)
}

// timerFire builds the kernel handler for a local timer, including the
// crash-epoch guard under fault injection. The causal parent of the firing
// is the event the node was processing when it *set* the timer, captured
// here (SetLocalTimer runs inside that event's handler).
func (c *Context) timerFire(kind int) sim.Handler {
	if c.net.life == nil && c.net.cfg.Tracer == nil {
		if kind >= 0 && kind < len(c.timerCache) {
			if fire := c.timerCache[kind]; fire != nil {
				return fire
			}
		}
		k := kind
		fire := func() {
			c.net.metrics.TimersFired++
			if c.net.cfg.Processing == nil {
				c.net.nodes[c.id].OnTimer(c, k)
				return
			}
			c.net.process(c.id, timerCounter, func() {
				c.net.nodes[c.id].OnTimer(c, k)
			})
		}
		if kind >= 0 && kind < maxCachedTimerKinds {
			for len(c.timerCache) <= kind {
				c.timerCache = append(c.timerCache, nil)
			}
			c.timerCache[kind] = fire
		}
		return fire
	}
	setCause := c.net.cause
	fire := func() {
		c.net.metrics.TimersFired++
		if c.net.cfg.Tracer == nil {
			c.net.process(c.id, timerCounter, func() {
				c.net.nodes[c.id].OnTimer(c, kind)
			})
			return
		}
		ref := c.net.cfg.Tracer.TimerFired(c.net.kernel.Now(), c.id, kind, setCause)
		c.net.process(c.id, timerCounter, func() {
			prev := c.net.cause
			c.net.cause = ref
			c.net.nodes[c.id].OnTimer(c, kind)
			c.net.cause = prev
		})
	}
	if life := c.net.life; life != nil {
		fire = life.guard(c.id, &life.tel.TimersSuppressed, fire)
	}
	return fire
}

// Rand returns the node's private random stream.
func (c *Context) Rand() *rng.Source { return c.r }

// Now returns global simulation time. It exists for measurement and
// tracing; protocols for asynchronous models must not branch on it (they
// could not observe it in reality). Anonymous-network protocols in this
// repository only use LocalTime.
func (c *Context) Now() simtime.Time { return c.net.kernel.Now() }

// StopNetwork halts the simulation after the current event, recording a
// cause. Used by protocols upon termination (e.g. a leader was elected).
// Under a Tracer this is the run's decision event — the terminus of the
// causal chain a critical-path analysis walks back from — parented to the
// delivery or timer being processed when the protocol decided.
func (c *Context) StopNetwork(cause string) {
	if t := c.net.cfg.Tracer; t != nil {
		t.Decision(c.net.kernel.Now(), c.id, cause, c.net.cause)
	}
	c.net.kernel.Stop(cause)
}
