package network

import (
	"testing"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// relay forwards every received message on out-port 0, up to a budget, then
// stops the network.
type relay struct {
	budget  int
	starter bool
	seen    int
}

func (p *relay) Init(ctx *Context) {
	if p.starter {
		ctx.Send(0, "token")
	}
}

func (p *relay) OnMessage(ctx *Context, _ int, payload any) {
	p.seen++
	p.budget--
	if p.budget <= 0 {
		ctx.StopNetwork("budget exhausted")
		return
	}
	ctx.Send(0, payload)
}

func (p *relay) OnTimer(*Context, int) {}

func ringOfRelays(t *testing.T, n int, seed uint64) *Network {
	t.Helper()
	net, err := New(Config{
		Graph: topology.Ring(n),
		Links: channel.RandomDelayFactory(dist.NewExponential(1)),
		Seed:  seed,
	}, func(i int) Node {
		return &relay{budget: 1000, starter: i == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestTokenCirculatesRing(t *testing.T) {
	net := ringOfRelays(t, 5, 1)
	if err := net.Run(simtime.Forever, 100000); err != nil {
		t.Fatal(err)
	}
	m := net.Metrics()
	if m.MessagesSent == 0 || m.MessagesDelivered == 0 {
		t.Fatalf("no traffic: %+v", m)
	}
	// The token is conserved: exactly one send per delivery plus the seed.
	if m.MessagesSent != m.MessagesDelivered {
		t.Fatalf("sent %d != delivered %d with a conserved token", m.MessagesSent, m.MessagesDelivered)
	}
	if net.StopCause() != "budget exhausted" {
		t.Fatalf("stop cause = %q", net.StopCause())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Metrics, simtime.Time) {
		net := ringOfRelays(t, 7, 42)
		if err := net.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		return net.Metrics(), net.Now()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Fatalf("replay diverged: %+v@%v vs %+v@%v", m1, t1, m2, t2)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := ringOfRelays(t, 7, 1)
	b := ringOfRelays(t, 7, 2)
	if err := a.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if a.Now() == b.Now() {
		t.Fatal("different seeds produced identical completion times")
	}
}

// idReader reads its identity in Init.
type idReader struct{ sawID int }

func (p *idReader) Init(ctx *Context)            { p.sawID = ctx.ID() }
func (p *idReader) OnMessage(*Context, int, any) {}
func (p *idReader) OnTimer(*Context, int)        {}

func TestAnonymityEnforced(t *testing.T) {
	net, err := New(Config{
		Graph:     topology.Ring(3),
		Links:     channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:      1,
		Anonymous: true,
	}, func(int) Node { return &idReader{} })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading ID on an anonymous network did not panic")
		}
	}()
	_ = net.Run(simtime.Forever, 0)
}

func TestIDAvailableOnNamedNetwork(t *testing.T) {
	net, err := New(Config{
		Graph: topology.Ring(3),
		Links: channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:  1,
	}, func(int) Node { return &idReader{sawID: -1} })
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		node, ok := net.NodeAt(i).(*idReader)
		if !ok {
			t.Fatal("unexpected node type")
		}
		if node.sawID != i {
			t.Fatalf("node %d saw id %d", i, node.sawID)
		}
	}
}

// ticker counts timer firings and measures local-time spacing.
type ticker struct {
	ticks  int
	limit  int
	locals []float64
}

func (p *ticker) Init(ctx *Context) {
	ctx.SetLocalTimer(1, 0)
}

func (p *ticker) OnMessage(*Context, int, any) {}

func (p *ticker) OnTimer(ctx *Context, kind int) {
	p.ticks++
	p.locals = append(p.locals, ctx.LocalTime())
	if p.ticks >= p.limit {
		ctx.StopNetwork("done ticking")
		return
	}
	ctx.SetLocalTimer(1, 0)
}

func TestLocalTimersFollowLocalClocks(t *testing.T) {
	net, err := New(Config{
		Graph:  topology.Ring(2),
		Links:  channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Clocks: clock.NewUniformFixedModel(2, 2), // all clocks run at 2x
		Seed:   3,
	}, func(i int) Node { return &ticker{limit: 10} })
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	// 10 local units at rate 2 = 5 real units.
	if got := float64(net.Now()); got < 4.99 || got > 5.01 {
		t.Fatalf("10 local ticks at rate 2 ended at real %v, want 5", got)
	}
	node, ok := net.NodeAt(0).(*ticker)
	if !ok {
		t.Fatal("unexpected node type")
	}
	for i, lt := range node.locals {
		want := float64(i + 1)
		if lt < want-1e-9 || lt > want+1e-9 {
			t.Fatalf("tick %d at local time %v, want %v", i, lt, want)
		}
	}
}

func TestTimerCancellation(t *testing.T) {
	type canceller struct {
		ticker // embed for OnMessage
	}
	_ = canceller{}

	fired := false
	node := &funcNode{
		init: func(ctx *Context) {
			ticket := ctx.SetLocalTimer(1, 0)
			if !ticket.Cancel() {
				t.Error("cancel failed")
			}
		},
		onTimer: func(*Context, int) { fired = true },
	}
	net, err := New(Config{
		Graph: topology.Ring(2),
		Links: channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:  4,
	}, func(i int) Node {
		if i == 0 {
			return node
		}
		return &funcNode{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

// funcNode adapts closures to the Node interface for small tests.
type funcNode struct {
	init      func(*Context)
	onMessage func(*Context, int, any)
	onTimer   func(*Context, int)
}

func (f *funcNode) Init(ctx *Context) {
	if f.init != nil {
		f.init(ctx)
	}
}

func (f *funcNode) OnMessage(ctx *Context, port int, payload any) {
	if f.onMessage != nil {
		f.onMessage(ctx, port, payload)
	}
}

func (f *funcNode) OnTimer(ctx *Context, kind int) {
	if f.onTimer != nil {
		f.onTimer(ctx, kind)
	}
}

func TestProcessingDelaySerialisesEvents(t *testing.T) {
	// Node 1 receives two messages at the same instant; with deterministic
	// processing time 1 they must complete at t=2 and t=3 (busy server),
	// not both at t=2.
	var completions []simtime.Time
	receiver := &funcNode{
		onMessage: func(ctx *Context, _ int, _ any) {
			completions = append(completions, ctx.Now())
		},
	}
	net, err := New(Config{
		Graph:      topology.Ring(2),
		Links:      channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Processing: dist.NewDeterministic(1),
		Seed:       5,
	}, func(i int) Node {
		if i == 1 {
			return receiver
		}
		return &funcNode{init: func(ctx *Context) {
			ctx.Send(0, "a")
			ctx.Send(0, "b")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(completions) != 2 {
		t.Fatalf("completions = %v", completions)
	}
	if completions[0] != 2 || completions[1] != 3 {
		t.Fatalf("busy-server completions = %v, want [2 3]", completions)
	}
}

func TestABEParameterReporting(t *testing.T) {
	net, err := New(Config{
		Graph:      topology.Ring(4),
		Links:      channel.RandomDelayFactory(dist.NewExponential(2.5)),
		Clocks:     clock.NewUniformFixedModel(0.5, 2),
		Processing: dist.NewDeterministic(0.25),
		Seed:       6,
	}, func(int) Node { return &funcNode{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := net.MaxLinkMeanDelay(); got != 2.5 {
		t.Fatalf("δ = %v, want 2.5", got)
	}
	low, high := net.ClockBounds()
	if low != 0.5 || high != 2 {
		t.Fatalf("clock bounds = (%v, %v)", low, high)
	}
	if got := net.ProcessingMean(); got != 0.25 {
		t.Fatalf("γ = %v, want 0.25", got)
	}
}

func TestHeterogeneousDeltaIsMaxLinkMean(t *testing.T) {
	means := []float64{1, 3, 2, 0.5}
	net, err := New(Config{
		Graph: topology.Ring(4),
		Links: channel.HeterogeneousFactory(func(i int) dist.Dist {
			return dist.NewExponential(means[i%len(means)])
		}),
		Seed: 7,
	}, func(int) Node { return &funcNode{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := net.MaxLinkMeanDelay(); got != 3 {
		t.Fatalf("δ = %v, want 3 (the worst link)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Graph: topology.Ring(2),
		Links: channel.RandomDelayFactory(dist.NewDeterministic(1)),
	}
	mk := func(int) Node { return &funcNode{} }

	if _, err := New(Config{Links: good.Links}, mk); err == nil {
		t.Fatal("missing graph accepted")
	}
	if _, err := New(Config{Graph: good.Graph}, mk); err == nil {
		t.Fatal("missing link factory accepted")
	}
	if _, err := New(good, nil); err == nil {
		t.Fatal("nil node constructor accepted")
	}
	if _, err := New(good, func(int) Node { return nil }); err == nil {
		t.Fatal("nil node accepted")
	}
}

func TestSendOnBadPortPanics(t *testing.T) {
	net, err := New(Config{
		Graph: topology.Ring(2),
		Links: channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:  8,
	}, func(int) Node {
		return &funcNode{init: func(ctx *Context) {
			defer func() {
				if recover() == nil {
					t.Error("send on port 5 did not panic")
				}
			}()
			ctx.Send(5, "x")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDegreesAndPorts(t *testing.T) {
	var outDeg, inDeg int
	net, err := New(Config{
		Graph: topology.Star(4),
		Links: channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:  9,
	}, func(i int) Node {
		if i != 0 {
			return &funcNode{}
		}
		return &funcNode{init: func(ctx *Context) {
			outDeg = ctx.OutDegree()
			inDeg = ctx.InDegree()
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if outDeg != 3 || inDeg != 3 {
		t.Fatalf("centre degrees = out %d in %d, want 3/3", outDeg, inDeg)
	}
}

func TestInPortIdentifiesSender(t *testing.T) {
	// On a bidirectional ring each node has two in-ports; check the port
	// passed to OnMessage matches the topology's In() ordering.
	type portRecord struct{ port int }
	records := make(map[int][]portRecord)
	net, err := New(Config{
		Graph: topology.BiRing(3),
		Links: channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:  10,
	}, func(i int) Node {
		return &funcNode{
			init: func(ctx *Context) {
				for p := 0; p < ctx.OutDegree(); p++ {
					ctx.Send(p, i)
				}
			},
			onMessage: func(ctx *Context, port int, payload any) {
				records[i] = append(records[i], portRecord{port: port})
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if len(records[i]) != 2 {
			t.Fatalf("node %d received %d messages, want 2", i, len(records[i]))
		}
		if records[i][0].port == records[i][1].port {
			t.Fatalf("node %d saw the same in-port twice", i)
		}
	}
}

// countingTracer counts callbacks and mints sequential refs, recording the
// cause ref handed in with each so tests can check exact attribution.
type countingTracer struct {
	sent, delivered, timers, decisions int
	next                               EventID
	causes                             []TraceRef
}

func (c *countingTracer) ref() TraceRef {
	c.next++
	return TraceRef{ID: c.next}
}

func (c *countingTracer) MessageSent(_ simtime.Time, _, _ int, _ any, cause TraceRef) TraceRef {
	c.sent++
	c.causes = append(c.causes, cause)
	return c.ref()
}

func (c *countingTracer) MessageDelivered(_ simtime.Time, _, _ int, _ any, send TraceRef) TraceRef {
	c.delivered++
	c.causes = append(c.causes, send)
	return c.ref()
}

func (c *countingTracer) TimerFired(_ simtime.Time, _, _ int, cause TraceRef) TraceRef {
	c.timers++
	c.causes = append(c.causes, cause)
	return c.ref()
}

func (c *countingTracer) Decision(_ simtime.Time, _ int, _ string, cause TraceRef) TraceRef {
	c.decisions++
	c.causes = append(c.causes, cause)
	return c.ref()
}

func TestTracerSeesEverything(t *testing.T) {
	tr := &countingTracer{}
	net, err := New(Config{
		Graph:  topology.Ring(2),
		Links:  channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:   11,
		Tracer: tr,
	}, func(i int) Node {
		return &funcNode{
			init: func(ctx *Context) {
				ctx.Send(0, "x")
				ctx.SetLocalTimer(1, 0)
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if tr.sent != 2 || tr.delivered != 2 || tr.timers != 2 {
		t.Fatalf("tracer = %+v", tr)
	}
	m := net.Metrics()
	if m.MessagesSent != 2 || m.MessagesDelivered != 2 || m.TimersFired != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestHorizonLimitsRun(t *testing.T) {
	net := ringOfRelays(t, 5, 12)
	if err := net.Run(10, 0); err != nil {
		t.Fatal(err)
	}
	if net.Now() != 10 {
		t.Fatalf("time = %v, want horizon 10", net.Now())
	}
}
