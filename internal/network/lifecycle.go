package network

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/faults"
	"abenet/internal/rng"
	"abenet/internal/simtime"
)

// lifecycle drives a faults.Plan against a running network: node up/down
// state, scripted events, stochastic crash/recovery processes, link outage
// state and the run's fault telemetry. A nil *lifecycle (Config.Faults ==
// nil) disables every hook, leaving the network byte-identical to a
// fault-free build.
type lifecycle struct {
	net  *Network
	plan *faults.Plan
	root *rng.Source // derived off the run root; never advanced elsewhere

	down  []bool   // down[i]: node i is crashed
	epoch []uint64 // epoch[i]: incremented on crash; stale work is suppressed

	// Scripted outages are tracked per cause so a partition heal cannot
	// clobber an individually scripted link outage (and vice versa), and
	// the partition layer counts overlapping cuts so healing one
	// partition never raises an edge another still holds down. An edge is
	// down while either layer holds it.
	linkOut [][]bool // linkOut[u][p]: down via KindLinkDown
	cutOut  [][]int  // cutOut[u][p]: number of active partitions cutting the edge
	// outPort[{u,v}]: out-port index of the directed edge u→v.
	outPort map[[2]int]int

	// openInterval[i] indexes tel.CrashIntervals while node i is down,
	// -1 otherwise.
	openInterval []int

	// preInit is true while the t = 0 events run, before any node's Init:
	// a recovery in that window must not restart-and-Init a node that has
	// never run (Run's own Init loop is about to do it).
	preInit bool

	tel faults.Telemetry
}

// newLifecycle validates the plan against the graph and prepares the
// per-node state. Called from New after the topology is known but before
// links are wired (the caller sizes portDown afterwards).
func newLifecycle(net *Network, plan *faults.Plan, root *rng.Source) (*lifecycle, error) {
	n := net.cfg.Graph.N()
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	// Explicit per-edge events must name edges the topology actually has:
	// a direction typo would otherwise validate clean and then no-op,
	// reporting a fault-free run as if the outage had happened. (Partition
	// groups legitimately cross non-adjacent pairs and stay unchecked.)
	for i, ev := range plan.Events {
		if ev.Kind != faults.KindLinkDown && ev.Kind != faults.KindLinkUp {
			continue
		}
		if !net.cfg.Graph.HasEdge(ev.From, ev.To) {
			return nil, fmt.Errorf("faults: event %d (%s at t=%g): edge %d->%d is not in the topology",
				i, ev.Kind, ev.At, ev.From, ev.To)
		}
	}
	life := &lifecycle{
		net:          net,
		plan:         plan,
		root:         root.Derive("faults"),
		down:         make([]bool, n),
		epoch:        make([]uint64, n),
		openInterval: make([]int, n),
	}
	for i := range life.openInterval {
		life.openInterval[i] = -1
	}
	return life, nil
}

// impairment translates the plan's link-fault axes into the channel-layer
// interceptor configuration.
func impairment(plan *faults.Plan) channel.Impairment {
	return channel.Impairment{
		Drop:       plan.Loss,
		Duplicate:  plan.Duplicate,
		Delay:      plan.Reorder,
		ExtraDelay: plan.ReorderDelay,
	}
}

// indexPorts records the out-port of every directed edge so scripted link
// and partition events can resolve edges in O(1). Called once from New
// after the link slices exist.
func (life *lifecycle) indexPorts() {
	g := life.net.cfg.Graph
	n := g.N()
	life.outPort = make(map[[2]int]int, g.EdgeCount())
	life.linkOut = make([][]bool, n)
	life.cutOut = make([][]int, n)
	for u := 0; u < n; u++ {
		out := g.Out(u)
		life.linkOut[u] = make([]bool, len(out))
		life.cutOut[u] = make([]int, len(out))
		for p, v := range out {
			life.outPort[[2]int{u, v}] = p
		}
	}
}

// portDown reports whether the p-th out-link of u is down for any cause.
func (life *lifecycle) portDown(u, p int) bool {
	return life.linkOut[u][p] || life.cutOut[u][p] > 0
}

// applyAtTimeZero applies the scripted events at t = 0 before any node
// runs Init: a node crashed from the very start must not send its Init
// messages, and a partition scripted from t = 0 must cut them. Called
// from Run ahead of the Init loop.
func (life *lifecycle) applyAtTimeZero() {
	life.preInit = true
	for _, ev := range life.plan.SortedEvents() {
		if ev.At == 0 {
			life.apply(ev)
		}
	}
	life.preInit = false
}

// install schedules the plan's scripted timeline (t > 0; instants at zero
// were applied by applyAtTimeZero) and the stochastic crash/recovery
// processes on the kernel. Called from Run before the kernel starts.
func (life *lifecycle) install() {
	for _, ev := range life.plan.SortedEvents() {
		if ev.At == 0 {
			continue
		}
		ev := ev
		life.net.kernel.AtFunc(simtime.Time(ev.At), func() { life.apply(ev) })
	}
	if life.plan.CrashRate > 0 {
		for i := 0; i < life.net.N(); i++ {
			life.scheduleCrash(i, life.root.DeriveIndexed("crash", i))
		}
	}
}

// scheduleCrash arms node i's next stochastic crash (and, under
// crash-recovery, the subsequent restart) using the node's private fault
// stream — the chain is deterministic regardless of event interleaving.
// The chain only recovers outages it caused: a crash attempt landing on a
// node already scripted down is a no-op and simply re-arms, so stochastic
// churn never cuts a scripted outage short.
func (life *lifecycle) scheduleCrash(i int, r *rng.Source) {
	wait := simtime.Duration(r.ExpFloat64() / life.plan.CrashRate)
	life.net.kernel.AfterFunc(wait, func() {
		if !life.crash(i) {
			life.scheduleCrash(i, r)
			return
		}
		if life.plan.RecoverRate <= 0 {
			return // crash-stop: the chain ends here
		}
		// The recovery belongs to this outage only: if a scripted event
		// recovered (and possibly re-crashed) the node in the meantime,
		// the epoch has moved on and the stale recovery must not fire.
		ep := life.epoch[i]
		outage := simtime.Duration(r.ExpFloat64() / life.plan.RecoverRate)
		life.net.kernel.AfterFunc(outage, func() {
			if life.down[i] && life.epoch[i] == ep {
				life.recover(i)
			}
			life.scheduleCrash(i, r)
		})
	})
}

// apply executes one scripted event. Redundant transitions (crashing a
// node that is already down, raising a link that is already up) are no-ops,
// so scripted and stochastic faults compose without double counting.
func (life *lifecycle) apply(ev faults.Event) {
	switch ev.Kind {
	case faults.KindCrash:
		if !life.crash(ev.Node) {
			// The node is already down (a stochastic outage in progress).
			// The scripted crash takes ownership by bumping the epoch, so
			// the chain's pending recovery cannot cut the scripted window
			// short — only a scripted RecoverAt ends it now.
			life.epoch[ev.Node]++
		}
	case faults.KindRecover:
		life.recover(ev.Node)
	case faults.KindLinkDown:
		life.setLink(ev.From, ev.To, false)
	case faults.KindLinkUp:
		life.setLink(ev.From, ev.To, true)
	case faults.KindPartition:
		life.setCut(ev.Group, false)
	case faults.KindHeal:
		life.setCut(ev.Group, true)
	}
}

// crash takes node i down: its pending timers and queued processing become
// stale (epoch bump) and future deliveries are suppressed until recovery.
// It reports whether the node actually transitioned (false: already down).
func (life *lifecycle) crash(i int) bool {
	if life.down[i] {
		return false
	}
	life.down[i] = true
	life.epoch[i]++
	life.tel.Crashes++
	life.openInterval[i] = len(life.tel.CrashIntervals)
	life.tel.CrashIntervals = append(life.tel.CrashIntervals, faults.CrashInterval{
		Node:  i,
		Start: float64(life.net.kernel.Now()),
		End:   -1,
	})
	return true
}

// recover restarts node i as a fresh protocol instance (churn: the
// restarted process keeps no state, and timers of the old incarnation
// stay dead thanks to the epoch bump at crash time).
func (life *lifecycle) recover(i int) {
	if !life.down[i] {
		return
	}
	life.down[i] = false
	life.tel.Recoveries++
	if idx := life.openInterval[i]; idx >= 0 {
		life.tel.CrashIntervals[idx].End = float64(life.net.kernel.Now())
		life.openInterval[i] = -1
	}
	if life.preInit {
		// Crash+recover scripted at t = 0, before any node ran: the
		// original instance is still fresh and Run's Init loop will
		// initialise it exactly once — no restart needed.
		return
	}
	// The dead incarnation's processing backlog died with it: its queued
	// completions are epoch-suppressed, so the busy-server clock must not
	// make the fresh instance wait behind phantom work.
	life.net.nextFree[i] = life.net.kernel.Now()
	node := life.net.makeNode(i)
	if node == nil {
		panic(fmt.Sprintf("network: makeNode(%d) returned nil on fault recovery", i))
	}
	life.net.nodes[i] = node
	node.Init(life.net.ctxs[i])
}

// setLink flips the scripted state of the directed edge from→to. Edges
// absent from the topology are ignored: plans are written against node
// sets, and partitions routinely name non-adjacent pairs.
func (life *lifecycle) setLink(from, to int, up bool) {
	if p, ok := life.outPort[[2]int{from, to}]; ok {
		life.linkOut[from][p] = !up
	}
}

// setCut takes every directed edge between group and its complement down
// (or back up) on the partition layer. Cuts are counted per edge, so
// overlapping partitions compose: an edge flows again only when every
// partition cutting it has healed. Individually scripted link outages live
// on their own layer and survive any heal. A stray heal with no matching
// partition is a no-op (the count never goes negative).
func (life *lifecycle) setCut(group []int, up bool) {
	inGroup := make([]bool, life.net.N())
	for _, v := range group {
		inGroup[v] = true
	}
	for edge, p := range life.outPort {
		if inGroup[edge[0]] != inGroup[edge[1]] {
			if up {
				if life.cutOut[edge[0]][p] > 0 {
					life.cutOut[edge[0]][p]--
				}
			} else {
				life.cutOut[edge[0]][p]++
			}
		}
	}
}

// suppressionCounter resolves which telemetry field stale queued work
// charges against (see the counter kinds in network.go).
func (life *lifecycle) suppressionCounter(kind int) *uint64 {
	if kind == timerCounter {
		return &life.tel.TimersSuppressed
	}
	return &life.tel.DeadLetters
}

// guard wraps deferred work for node v (processing-queue completions) so
// it is suppressed if the node crashed — or crashed and restarted — after
// the work was queued.
func (life *lifecycle) guard(v int, suppressed *uint64, work func()) func() {
	ep := life.epoch[v]
	return func() {
		if life.down[v] || life.epoch[v] != ep {
			*suppressed++
			return
		}
		work()
	}
}

// telemetry snapshots the run's fault telemetry, folding in the per-link
// impairment counters.
func (life *lifecycle) telemetry() *faults.Telemetry {
	tel := life.tel
	tel.CrashIntervals = append([]faults.CrashInterval(nil), life.tel.CrashIntervals...)
	for _, l := range life.net.allLinks {
		if rep, ok := l.(channel.ImpairmentReporter); ok {
			st := rep.ImpairmentStats()
			tel.MessagesDropped += st.Dropped
			tel.MessagesDuplicated += st.Duplicated
			tel.MessagesDelayed += st.Delayed
		}
	}
	return &tel
}
