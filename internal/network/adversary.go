package network

import (
	"abenet/internal/byzantine"
	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/simtime"
)

// adversary drives a byzantine.Plan against a running network: it sits on
// the send path (Context.Send / Context.Broadcast) — one layer above the
// per-edge link interceptors — so a role can coordinate what a node tells
// each of its neighbours. A nil *adversary (Config.Byzantine == nil)
// disables every hook, leaving the network byte-identical to an
// adversary-free build.
//
// Each role holder owns a private stream derived off the run root
// ("byzantine"/node), so adversarial sampling never perturbs the node,
// clock, edge or fault streams: adding a role changes only that node's
// outgoing traffic.
type adversary struct {
	net   *Network
	plan  *byzantine.Plan
	roles []*byzantine.Role // roles[i] = node i's role, nil if honest
	rands []*rng.Source     // rands[i] = node i's adversarial stream
	stall []dist.Dist       // resolved stall distributions (Stall roles)
	tel   byzantine.Telemetry
}

// newAdversary validates the plan against the graph and prepares the
// per-node role table.
func newAdversary(net *Network, plan *byzantine.Plan, root *rng.Source) (*adversary, error) {
	n := net.cfg.Graph.N()
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	adv := &adversary{
		net:   net,
		plan:  plan,
		roles: make([]*byzantine.Role, n),
		rands: make([]*rng.Source, n),
		stall: make([]dist.Dist, n),
	}
	byz := root.Derive("byzantine")
	for i := range plan.Roles {
		role := &plan.Roles[i]
		adv.roles[role.Node] = role
		adv.rands[role.Node] = byz.DeriveIndexed("node", role.Node)
		if role.Behavior == byzantine.Stall {
			if role.StallDelay != nil {
				adv.stall[role.Node] = role.StallDelay
			} else {
				adv.stall[role.Node] = dist.NewExponential(1)
			}
		}
	}
	return adv, nil
}

// intercept applies node from's role to one outgoing payload. atomic is
// true when the payload travels as one local-broadcast transmission (the
// medium then physically prevents per-receiver divergence). It returns the
// possibly substituted payload, whether the message is silently dropped,
// and a hold-back delay (> 0 for stalled messages).
func (a *adversary) intercept(from int, payload any, atomic bool) (out any, drop bool, hold simtime.Duration) {
	role := a.roles[from]
	if role == nil {
		return payload, false, 0
	}
	r := a.rands[from]
	// Prob in (0, 1) draws once per message from the role holder's private
	// stream; 0 and 1 draw nothing, so deterministic roles stay replay-
	// stable no matter how other streams are consumed.
	if !r.Bool(roleProb(role)) {
		return payload, false, 0
	}
	switch role.Behavior {
	case byzantine.Mute:
		a.tel.Omissions++
		return nil, true, 0
	case byzantine.Stall:
		a.tel.Stalls++
		return payload, false, simtime.Duration(a.stall[from].Sample(r))
	case byzantine.Corrupt:
		if c, ok := payload.(byzantine.Corruptible); ok {
			a.tel.Corruptions++
			return c.Corrupt(r), false, 0
		}
		return payload, false, 0
	case byzantine.Equivocate:
		c, ok := payload.(byzantine.Corruptible)
		if !ok {
			return payload, false, 0
		}
		if atomic {
			// The local-broadcast medium defeats equivocation: the one
			// transmission carries one (corrupted) value to everyone.
			a.tel.Corruptions++
		} else {
			// Point-to-point: each receiver gets an independently drawn
			// substitute — the classic two-faced adversary.
			a.tel.Equivocations++
		}
		return c.Corrupt(r), false, 0
	}
	return payload, false, 0
}

// roleProb resolves the role's activation probability (0 means 1).
func roleProb(role *byzantine.Role) float64 {
	if role.Prob == 0 {
		return 1
	}
	return role.Prob
}

// telemetry snapshots the adversary counters.
func (a *adversary) telemetry() *byzantine.Telemetry {
	tel := a.tel
	return &tel
}
