package network

import (
	"abenet/internal/probe"
)

// ProbeGauges implements probe.Observable: the network-level series every
// observed run carries. The schema is stable regardless of which optional
// subsystems (faults, byzantine) are configured — absent subsystems read
// as constant zero — so downstream consumers can rely on the columns.
func (net *Network) ProbeGauges() []probe.Gauge {
	return []probe.Gauge{
		{Name: "in_flight", Read: func() float64 {
			return float64(net.metrics.MessagesSent - net.metrics.MessagesDelivered)
		}},
		{Name: "sent", Read: func() float64 { return float64(net.metrics.MessagesSent) }},
		{Name: "delivered", Read: func() float64 { return float64(net.metrics.MessagesDelivered) }},
		{Name: "timers_fired", Read: func() float64 { return float64(net.metrics.TimersFired) }},
		{Name: "crashed", Read: func() float64 {
			if net.life == nil {
				return 0
			}
			crashed := 0
			for _, d := range net.life.down {
				if d {
					crashed++
				}
			}
			return float64(crashed)
		}},
		{Name: "byz_interventions", Read: func() float64 {
			if net.adv == nil {
				return 0
			}
			return float64(net.adv.tel.Total())
		}},
	}
}

// InstallProbe attaches a collector to the kernel's post-event hook so it
// samples after every executed event. The collector only reads state, so
// the observed run's event schedule — and therefore its metrics, trace
// and report — stays byte-identical to an unobserved run (the runner's
// golden pins enforce this). Call before Run; pass nil to detach.
func (net *Network) InstallProbe(c *probe.Collector) {
	if c == nil {
		net.kernel.SetObserver(nil)
		return
	}
	net.kernel.SetObserver(func() {
		c.Observe(net.kernel.Now(), net.kernel.Executed())
	})
}
