package network

import (
	"reflect"
	"testing"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// beacon ticks every time unit and sends a message on out-port 0 at each
// tick; it records how many times it was (re)initialised.
type beacon struct {
	inits int
	sent  int
	recvd int
}

func (b *beacon) Init(ctx *Context) {
	b.inits++
	ctx.SetLocalTimer(1, 1)
}

func (b *beacon) OnMessage(*Context, int, any) { b.recvd++ }

func (b *beacon) OnTimer(ctx *Context, kind int) {
	ctx.SetLocalTimer(1, 1)
	b.sent++
	ctx.Send(0, b.sent)
}

// beaconRing builds a deterministic two-node ring of beacons under plan.
func beaconRing(t *testing.T, n int, plan *faults.Plan, seed uint64) (*Network, []*beacon) {
	t.Helper()
	nodes := make([]*beacon, n)
	net, err := New(Config{
		Graph:  topology.Ring(n),
		Links:  channel.RandomDelayFactory(dist.NewDeterministic(0.5)),
		Seed:   seed,
		Faults: plan,
	}, func(i int) Node {
		// Fresh instance per call: recovery restarts must re-create it.
		nodes[i] = &beacon{}
		return nodes[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, nodes
}

func TestScriptedCrashSuppressesTimersAndDeliveries(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{faults.CrashAt(10, 1)}}
	net, nodes := beaconRing(t, 2, plan, 7)
	if err := net.Run(simtime.Time(30), 0); err != nil {
		t.Fatal(err)
	}
	tel := net.FaultTelemetry()
	if tel == nil {
		t.Fatal("no telemetry despite a fault plan")
	}
	if tel.Crashes != 1 || tel.Recoveries != 0 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/0", tel.Crashes, tel.Recoveries)
	}
	if !net.NodeDown(1) || net.NodeDown(0) {
		t.Fatal("down state wrong after crash-stop")
	}
	// Node 1 ticked ~10 times before the crash, then fell silent; node 0
	// kept ticking to the horizon.
	if nodes[1].sent < 8 || nodes[1].sent > 11 {
		t.Fatalf("crashed node sent %d beacons, want ~10", nodes[1].sent)
	}
	if nodes[0].sent < 28 {
		t.Fatalf("healthy node sent %d beacons, want ~30", nodes[0].sent)
	}
	// Node 0's beacons to the crashed node become dead letters, and the
	// crashed node's pending tick is suppressed exactly once (the epoch
	// kills the tick chain at its first post-crash fire).
	if tel.DeadLetters == 0 {
		t.Fatal("no dead letters recorded at the crashed node")
	}
	if tel.TimersSuppressed != 1 {
		t.Fatalf("timers suppressed = %d, want 1", tel.TimersSuppressed)
	}
	want := []faults.CrashInterval{{Node: 1, Start: 10, End: -1}}
	if !reflect.DeepEqual(tel.CrashIntervals, want) {
		t.Fatalf("crash intervals = %+v, want %+v", tel.CrashIntervals, want)
	}
}

func TestRecoveryRestartsAFreshIncarnation(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{
		faults.CrashAt(10, 1),
		faults.RecoverAt(20, 1),
	}}
	net, nodes := beaconRing(t, 2, plan, 7)
	if err := net.Run(simtime.Time(30), 0); err != nil {
		t.Fatal(err)
	}
	tel := net.FaultTelemetry()
	if tel.Crashes != 1 || tel.Recoveries != 1 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/1", tel.Crashes, tel.Recoveries)
	}
	if net.NodeDown(1) {
		t.Fatal("node 1 still down after scripted recovery")
	}
	want := []faults.CrashInterval{{Node: 1, Start: 10, End: 20}}
	if !reflect.DeepEqual(tel.CrashIntervals, want) {
		t.Fatalf("crash intervals = %+v, want %+v", tel.CrashIntervals, want)
	}
	// The restarted incarnation is a fresh object: the makeNode slot was
	// overwritten and the new instance Init'd once, with ~10 post-restart
	// ticks of its own.
	restarted := net.NodeAt(1).(*beacon)
	if restarted == nodes[1] {
		// nodes[1] was refreshed by makeNode on recovery, so the slices
		// agree again; the old incarnation is simply gone.
		t.Log("restart reused the makeNode slot (expected)")
	}
	if restarted.inits != 1 {
		t.Fatalf("restarted incarnation inits = %d, want 1", restarted.inits)
	}
	if restarted.sent < 8 || restarted.sent > 11 {
		t.Fatalf("restarted incarnation sent %d beacons, want ~10", restarted.sent)
	}
}

func TestScriptedLinkOutageAndPartition(t *testing.T) {
	// Ring 0→1→2→0. Take 0→1 down during [5, 15): node 0's beacons in
	// that window are link drops.
	plan := &faults.Plan{Events: []faults.Event{
		faults.LinkDownAt(5, 0, 1),
		faults.LinkUpAt(15, 0, 1),
	}}
	net, nodes := beaconRing(t, 3, plan, 3)
	if err := net.Run(simtime.Time(30), 0); err != nil {
		t.Fatal(err)
	}
	tel := net.FaultTelemetry()
	if tel.LinkDrops < 8 || tel.LinkDrops > 11 {
		t.Fatalf("link drops = %d, want ~10 (one per tick of the outage)", tel.LinkDrops)
	}
	if tel.Crashes != 0 || tel.DeadLetters != 0 {
		t.Fatalf("unexpected node faults: %+v", tel)
	}
	if nodes[1].recvd >= nodes[2].recvd {
		t.Fatalf("outage downstream node received %d >= %d", nodes[1].recvd, nodes[2].recvd)
	}

	// A partition isolating {0} cuts 0→1 and 2→0 on the ring; healing
	// restores both.
	plan = &faults.Plan{Events: faults.PartitionDuring(5, 15, 0)}
	net, _ = beaconRing(t, 3, plan, 3)
	if err := net.Run(simtime.Time(30), 0); err != nil {
		t.Fatal(err)
	}
	tel2 := net.FaultTelemetry()
	if tel2.LinkDrops < 2*8 || tel2.LinkDrops > 2*11 {
		t.Fatalf("partition drops = %d, want ~20 (two directed cut edges)", tel2.LinkDrops)
	}
}

// TestHealDoesNotClobberScriptedLinkOutage pins the outage layering: a
// partition heal restores only the cut, never a link the plan scripted
// down independently.
func TestHealDoesNotClobberScriptedLinkOutage(t *testing.T) {
	// Ring 0→1→2→0. Edge 0→1 is down for good from t=2; a partition
	// isolating {0} (cutting 0→1 and 2→0) comes and goes during [5, 10).
	plan := &faults.Plan{Events: append(
		faults.PartitionDuring(5, 10, 0),
		faults.LinkDownAt(2, 0, 1),
	)}
	net, nodes := beaconRing(t, 3, plan, 3)
	if err := net.Run(simtime.Time(30), 0); err != nil {
		t.Fatal(err)
	}
	// After the heal, 2→0 flows again but 0→1 stays dead: node 1 must
	// receive nothing sent after t=2 (deliveries in flight at the cut
	// instant may still land).
	if nodes[1].recvd > 3 {
		t.Fatalf("node 1 received %d beacons through a link scripted down at t=2", nodes[1].recvd)
	}
	// Node 0 keeps receiving on 2→0 after the heal, so it sees most of
	// node 2's ~30 beacons (minus the 5-unit cut window).
	if nodes[0].recvd < 20 {
		t.Fatalf("node 0 received %d beacons; the heal did not restore the cut edge", nodes[0].recvd)
	}
}

// TestOverlappingPartitionsCompose pins the cut refcount: an edge crossed
// by two overlapping partitions flows again only after both have healed.
func TestOverlappingPartitionsCompose(t *testing.T) {
	// Ring 0→1→2→0. Partition {0} holds 0→1 and 2→0 during [2, 20);
	// partition {1} holds 0→1 and 1→2 during [10, 28). Edge 0→1 is cut by
	// both, so it must stay down across the first heal at t=20 and only
	// reopen at t=28.
	plan := &faults.Plan{Events: append(
		faults.PartitionDuring(2, 20, 0),
		faults.PartitionDuring(10, 28, 1)...,
	)}
	net, nodes := beaconRing(t, 3, plan, 5)
	if err := net.Run(simtime.Time(34), 0); err != nil {
		t.Fatal(err)
	}
	// Node 1 hears nothing sent in [2, 28): at most the ~1 pre-cut beacon
	// plus the ~6 after the second heal.
	if nodes[1].recvd > 8 {
		t.Fatalf("node 1 received %d beacons; edge 0→1 reopened before both partitions healed", nodes[1].recvd)
	}
	// A single partition of the same total length would have freed 0→1 at
	// t=20; the extra suppression beyond one cut's worth of drops shows up
	// as link drops from both windows (~26 on 0→1 plus the other cut edges).
	if net.FaultTelemetry().LinkDrops < 30 {
		t.Fatalf("link drops = %d, want the union of both cut windows", net.FaultTelemetry().LinkDrops)
	}
}

// TestScriptedLinkEventRejectsAbsentEdge pins the build-time check: a
// direction typo in a per-edge event errors instead of silently no-oping.
func TestScriptedLinkEventRejectsAbsentEdge(t *testing.T) {
	// Ring(3) has 1→2 but not 2→1.
	_, err := New(Config{
		Graph:  topology.Ring(3),
		Links:  channel.RandomDelayFactory(dist.NewDeterministic(0.5)),
		Faults: &faults.Plan{Events: []faults.Event{faults.LinkDownAt(1, 2, 1)}},
	}, func(int) Node { return &beacon{} })
	if err == nil {
		t.Fatal("link event on an absent edge must fail the build")
	}
}

// TestStaleStochasticRecoveryDoesNotEndScriptedOutage pins the chain's
// ownership invariant end to end: node 1 crashes stochastically, a
// scripted RecoverAt ends that outage, and a scripted CrashAt then starts
// a crash-stop outage — which the chain's still-pending recovery (armed
// for the first outage) must not resurrect.
func TestStaleStochasticRecoveryDoesNotEndScriptedOutage(t *testing.T) {
	plan := &faults.Plan{
		CrashRate: 0.5, RecoverRate: 0.01,
		Events: []faults.Event{faults.RecoverAt(2, 1), faults.CrashAt(3, 1)},
	}
	net, _ := beaconRing(t, 4, plan, 0) // seed 0: node 1 crashes at t≈1.42
	if err := net.Run(simtime.Time(40), 0); err != nil {
		t.Fatal(err)
	}
	if !net.NodeDown(1) {
		t.Fatal("scripted crash-stop outage of node 1 was ended by a stale stochastic recovery")
	}
	var node1 []faults.CrashInterval
	for _, iv := range net.FaultTelemetry().CrashIntervals {
		if iv.Node == 1 {
			node1 = append(node1, iv)
		}
	}
	if len(node1) != 2 || node1[0].End != 2 || node1[1].Start != 3 || node1[1].End != -1 {
		t.Fatalf("node 1 intervals = %+v, want the stochastic outage closed at t=2 and the scripted one open", node1)
	}
}

// TestScriptedCrashTakesOwnershipOfStochasticOutage pins the merge rule:
// when a scripted crash lands on a node already down stochastically, the
// merged outage belongs to the script — the chain's pending recovery must
// not end it, only the scripted RecoverAt does.
func TestScriptedCrashTakesOwnershipOfStochasticOutage(t *testing.T) {
	plan := &faults.Plan{
		CrashRate: 0.5, RecoverRate: 0.1,
		Events: []faults.Event{faults.CrashAt(15, 1), faults.RecoverAt(40, 1)},
	}
	net, _ := beaconRing(t, 4, plan, 0) // seed 0: node 1 crashes at t≈5.01
	if err := net.Run(simtime.Time(60), 0); err != nil {
		t.Fatal(err)
	}
	merged := false
	for _, iv := range net.FaultTelemetry().CrashIntervals {
		if iv.Node == 1 && iv.Start < 15 && (iv.End > 15 || iv.End == -1) {
			merged = true
			if iv.End != 40 {
				t.Fatalf("merged outage [%g, %g] not held to the scripted RecoverAt(40)", iv.Start, iv.End)
			}
		}
	}
	if !merged {
		t.Fatal("seed drifted: node 1 was not stochastically down when the scripted crash hit")
	}
}

// TestTimeZeroFaultsPrecedeInit pins the start-of-run ordering: a node
// crashed at t=0 never runs Init (its candidacy messages do not leak into
// the run), and a partition scripted from t=0 cuts Init-time sends.
func TestTimeZeroFaultsPrecedeInit(t *testing.T) {
	// relay ring (network_test.go): node 0 sends the only token from Init.
	makeRelays := func(i int) Node { return &relay{budget: 1000, starter: i == 0} }
	build := func(plan *faults.Plan) *Network {
		net, err := New(Config{
			Graph:  topology.Ring(3),
			Links:  channel.RandomDelayFactory(dist.NewDeterministic(1)),
			Seed:   1,
			Faults: plan,
		}, makeRelays)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	crashed := build(&faults.Plan{Events: []faults.Event{faults.CrashAt(0, 0)}})
	if err := crashed.Run(simtime.Time(10), 0); err != nil {
		t.Fatal(err)
	}
	if m := crashed.Metrics(); m.MessagesSent != 0 {
		t.Fatalf("node crashed at t=0 still sent %d Init messages", m.MessagesSent)
	}

	cut := build(&faults.Plan{Events: faults.PartitionDuring(0, 5, 0)})
	if err := cut.Run(simtime.Time(3), 0); err != nil {
		t.Fatal(err)
	}
	tel := cut.FaultTelemetry()
	if tel.LinkDrops != 1 {
		t.Fatalf("Init-time send across a t=0 partition: %d link drops, want 1", tel.LinkDrops)
	}
	if m := cut.Metrics(); m.MessagesDelivered != 0 {
		t.Fatalf("%d messages crossed a partition scripted from t=0", m.MessagesDelivered)
	}
}

// TestCrashRecoverAtTimeZeroInitsOnce pins the t=0 corner: a node crashed
// and recovered before the run starts is still a single fresh instance,
// initialised exactly once by Run's Init loop.
func TestCrashRecoverAtTimeZeroInitsOnce(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{faults.CrashAt(0, 2), faults.RecoverAt(0, 2)}}
	net, nodes := beaconRing(t, 4, plan, 1)
	if err := net.Run(simtime.Time(10), 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range nodes {
		if b.inits != 1 {
			t.Fatalf("node %d inits = %d, want exactly 1", i, b.inits)
		}
	}
	tel := net.FaultTelemetry()
	if tel.Crashes != 1 || tel.Recoveries != 1 {
		t.Fatalf("telemetry = %+v, want the t=0 crash+recovery recorded once", tel)
	}
}

func TestStochasticChurnIsDeterministic(t *testing.T) {
	plan := &faults.Plan{CrashRate: 0.05, RecoverRate: 0.2, Loss: 0.1, Duplicate: 0.05}
	run := func() *faults.Telemetry {
		net, _ := beaconRing(t, 4, plan, 99)
		if err := net.Run(simtime.Time(200), 0); err != nil {
			t.Fatal(err)
		}
		return net.FaultTelemetry()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("telemetry diverged across identical runs:\n a: %+v\n b: %+v", a, b)
	}
	if a.Crashes == 0 || a.Recoveries == 0 {
		t.Fatalf("no churn injected at rate 0.05 over 200 time units: %+v", a)
	}
	if a.MessagesDropped == 0 || a.MessagesDuplicated == 0 {
		t.Fatalf("no link faults injected: %+v", a)
	}
	if len(a.CrashIntervals) != a.Crashes {
		t.Fatalf("%d crash intervals for %d crashes", len(a.CrashIntervals), a.Crashes)
	}
}

// TestEmptyPlanMatchesNilPlan pins the Faults == nil equivalence at the
// network layer: a zero plan must not perturb a single delivery, because
// the interceptor is only installed for non-zero link faults and the
// lifecycle's derived RNG never advances the root streams.
func TestEmptyPlanMatchesNilPlan(t *testing.T) {
	run := func(plan *faults.Plan) (Metrics, int) {
		net, nodes := beaconRing(t, 3, plan, 42)
		if err := net.Run(simtime.Time(50), 0); err != nil {
			t.Fatal(err)
		}
		return net.Metrics(), nodes[0].recvd
	}
	mNil, rNil := run(nil)
	mZero, rZero := run(&faults.Plan{})
	if mNil != mZero || rNil != rZero {
		t.Fatalf("zero plan perturbed the run:\n nil:  %+v (recvd %d)\n zero: %+v (recvd %d)",
			mNil, rNil, mZero, rZero)
	}
	if tel := func() *faults.Telemetry {
		net, _ := beaconRing(t, 3, &faults.Plan{}, 42)
		if err := net.Run(simtime.Time(50), 0); err != nil {
			t.Fatal(err)
		}
		return net.FaultTelemetry()
	}(); tel.TotalFaults() != 0 {
		t.Fatalf("zero plan injected faults: %+v", tel)
	}
}

func TestInvalidPlanRejectedAtBuild(t *testing.T) {
	_, err := New(Config{
		Graph:  topology.Ring(3),
		Links:  channel.RandomDelayFactory(dist.NewExponential(1)),
		Faults: &faults.Plan{Events: []faults.Event{faults.CrashAt(1, 9)}},
	}, func(int) Node { return &beacon{} })
	if err == nil {
		t.Fatal("out-of-range fault event must fail the build")
	}
}
