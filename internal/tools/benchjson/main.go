// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_*.json shape committed in this repository (see BENCH_seed.json):
// per-benchmark ns/op plus any custom metrics, the capture environment,
// and a stable ordering. CI pipes the benchmark smoke run through it to
// publish BENCH_pr2.json next to the seed baseline.
//
// With -baseline FILE it additionally prints a per-benchmark ns/op
// comparison against a previously committed BENCH_*.json to stderr, so a
// kernel regression is visible directly in the CI log (timings are
// single-iteration smoke numbers: treat large consistent swings as
// signal, small ones as noise).
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | go run ./internal/tools/benchjson \
//	    -command "go test -bench . -benchtime 1x -run '^$' ." \
//	    -note "PR benchmark smoke through the unified Run path" \
//	    -baseline BENCH_pr4.json > BENCH_pr5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchmark is one benchmark's captured numbers. The allocation fields are
// pointers so a genuine 0 allocs/op (the kernel's ticketless hot paths)
// survives the round trip distinguishably from "run without -benchmem".
type benchmark struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// output is the BENCH_*.json document.
type output struct {
	Benchmarks  map[string]benchmark `json:"benchmarks"`
	Command     string               `json:"command"`
	Environment map[string]string    `json:"environment"`
	Note        string               `json:"note"`
	Order       []string             `json:"order"`
}

func main() {
	command := flag.String("command", "go test -bench . -benchtime 1x -run '^$' .", "command recorded in the document")
	note := flag.String("note", "benchmark smoke: single-iteration timings are indicative only; the attached metrics pin the experiments' headline findings", "note recorded in the document")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to print a ns/op comparison against (stderr)")
	flag.Parse()

	out := output{
		Benchmarks:  map[string]benchmark{},
		Command:     *command,
		Environment: map[string]string{},
		Note:        *note,
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Environment[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name-GOMAXPROCS, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix, but only when it is numeric so
		// dashes inside sub-benchmark names (Link/random-delay) survive.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := benchmark{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = &v
			case "allocs/op":
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out.Benchmarks[name] = b
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	for name := range out.Benchmarks {
		out.Order = append(out.Order, name)
	}
	sort.Strings(out.Order)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		if err := compare(*baseline, out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// compare prints a per-benchmark ns/op delta table against a committed
// baseline document to stderr. Benchmarks present on only one side are
// listed as added/removed rather than silently skipped.
func compare(path string, current output) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base output
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	names := map[string]bool{}
	for name := range base.Benchmarks {
		names[name] = true
	}
	for name := range current.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	fmt.Fprintf(os.Stderr, "benchmark comparison vs %s (smoke timings: treat small deltas as noise)\n", path)
	fmt.Fprintf(os.Stderr, "%-44s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range sorted {
		b, inBase := base.Benchmarks[name]
		c, inCur := current.Benchmarks[name]
		switch {
		case !inBase:
			fmt.Fprintf(os.Stderr, "%-44s %14s %14.0f %9s\n", name, "—", c.NsPerOp, "added")
		case !inCur:
			fmt.Fprintf(os.Stderr, "%-44s %14.0f %14s %9s\n", name, b.NsPerOp, "—", "removed")
		case b.NsPerOp == 0:
			fmt.Fprintf(os.Stderr, "%-44s %14.0f %14.0f %9s\n", name, b.NsPerOp, c.NsPerOp, "—")
		default:
			fmt.Fprintf(os.Stderr, "%-44s %14.0f %14.0f %+8.1f%%\n",
				name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
	}
	compareAllocs(sorted, base, current)
	return nil
}

// compareAllocs prints the allocation half of the comparison — allocs/op
// per benchmark, with B/op in parentheses — for benchmarks where either
// side recorded memory numbers (-benchmem). Unlike the smoke timings,
// allocation counts are deterministic, so any delta is a real change in
// the measured code path.
func compareAllocs(sorted []string, base, current output) {
	any := false
	for _, name := range sorted {
		if base.Benchmarks[name].AllocsPerOp != nil || current.Benchmarks[name].AllocsPerOp != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	cell := func(b benchmark) string {
		if b.AllocsPerOp == nil {
			return "—"
		}
		if b.BytesPerOp == nil {
			return fmt.Sprintf("%.0f", *b.AllocsPerOp)
		}
		return fmt.Sprintf("%.0f (%.0f B)", *b.AllocsPerOp, *b.BytesPerOp)
	}
	fmt.Fprintf(os.Stderr, "\nallocation comparison (allocs/op, deterministic — every delta is real)\n")
	fmt.Fprintf(os.Stderr, "%-44s %18s %18s %9s\n", "benchmark", "baseline", "current", "delta")
	for _, name := range sorted {
		b, inBase := base.Benchmarks[name]
		c, inCur := current.Benchmarks[name]
		if (!inBase || b.AllocsPerOp == nil) && (!inCur || c.AllocsPerOp == nil) {
			continue
		}
		delta := "—"
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *b.AllocsPerOp != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(*c.AllocsPerOp-*b.AllocsPerOp) / *b.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "%-44s %18s %18s %9s\n", name, cell(b), cell(c), delta)
	}
}
