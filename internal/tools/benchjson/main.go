// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_*.json shape committed in this repository (see BENCH_seed.json):
// per-benchmark ns/op plus any custom metrics, the capture environment,
// and a stable ordering. CI pipes the benchmark smoke run through it to
// publish BENCH_pr2.json next to the seed baseline.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | go run ./internal/tools/benchjson \
//	    -command "go test -bench . -benchtime 1x -run '^$' ." \
//	    -note "PR benchmark smoke through the unified Run path" > BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchmark is one benchmark's captured numbers.
type benchmark struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// output is the BENCH_*.json document.
type output struct {
	Benchmarks  map[string]benchmark `json:"benchmarks"`
	Command     string               `json:"command"`
	Environment map[string]string    `json:"environment"`
	Note        string               `json:"note"`
	Order       []string             `json:"order"`
}

func main() {
	command := flag.String("command", "go test -bench . -benchtime 1x -run '^$' .", "command recorded in the document")
	note := flag.String("note", "benchmark smoke: single-iteration timings are indicative only; the attached metrics pin the experiments' headline findings", "note recorded in the document")
	flag.Parse()

	out := output{
		Benchmarks:  map[string]benchmark{},
		Command:     *command,
		Environment: map[string]string{},
		Note:        *note,
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Environment[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name-GOMAXPROCS, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		b := benchmark{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		out.Benchmarks[name] = b
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	for name := range out.Benchmarks {
		out.Order = append(out.Order, name)
	}
	sort.Strings(out.Order)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
