// Command obscompare gates the observer overhead in CI. It reads
// `go test -bench` output on stdin, takes the best (minimum) ns/op for a
// baseline benchmark and an observed benchmark across however many -count
// repetitions ran, and exits non-zero if the observed best exceeds the
// baseline best by more than -max-overhead.
//
// Best-of-N with a repeated count is the standard way to compare paired
// microbenchmarks: the minimum is the least-noisy estimate of the true
// cost, so a persistent gap survives while scheduler jitter does not.
//
// Usage:
//
//	go test -run '^$' -bench 'Observer(Detached|Attached)' -benchtime 2000x -count 6 ./internal/sim \
//	    | go run ./internal/tools/obscompare \
//	        -baseline BenchmarkObserverDetached -observed BenchmarkObserverAttached -max-overhead 0.05
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "BenchmarkObserverDetached", "baseline benchmark name")
	observed := flag.String("observed", "BenchmarkObserverAttached", "observed benchmark name")
	maxOverhead := flag.Float64("max-overhead", 0.05, "maximum tolerated (observed-baseline)/baseline ratio")
	flag.Parse()

	best := map[string]float64{}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line) // pass the raw output through for the CI log
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if cur, ok := best[name]; !ok || v < cur {
				best[name] = v
			}
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "obscompare:", err)
		os.Exit(1)
	}

	base, ok := best[*baseline]
	if !ok || base <= 0 {
		fmt.Fprintf(os.Stderr, "obscompare: no ns/op for baseline %s\n", *baseline)
		os.Exit(1)
	}
	obs, ok := best[*observed]
	if !ok {
		fmt.Fprintf(os.Stderr, "obscompare: no ns/op for observed %s\n", *observed)
		os.Exit(1)
	}
	overhead := (obs - base) / base
	fmt.Printf("obscompare: %s best %.0f ns/op, %s best %.0f ns/op, overhead %+.2f%% (limit %.0f%%)\n",
		*baseline, base, *observed, obs, overhead*100, *maxOverhead*100)
	if overhead > *maxOverhead {
		fmt.Fprintf(os.Stderr, "obscompare: observer overhead %.2f%% exceeds the %.0f%% budget\n",
			overhead*100, *maxOverhead*100)
		os.Exit(1)
	}
}
