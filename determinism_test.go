package abenet_test

import (
	"fmt"
	"reflect"
	"testing"

	"abenet"
)

// TestCrossPackageDeterminism verifies the simulator's foundational
// reproducibility contract through the public facade: the same
// (ElectionConfig, seed) must produce a byte-identical ElectionResult on
// repeated runs, for every delay-distribution family. The property spans
// the whole stack — rng stream derivation, dist sampling, the event
// kernel, links, clocks and the protocol itself — so any package that
// sneaks in map-iteration order, shared mutable state or time.Now breaks
// it here.
func TestCrossPackageDeterminism(t *testing.T) {
	families := map[string]abenet.DelayDist{
		"deterministic":  abenet.Deterministic(1),
		"uniform":        abenet.Uniform(0, 2),
		"exponential":    abenet.Exponential(1),
		"erlang":         abenet.Erlang(4, 1),
		"pareto":         abenet.ParetoWithMean(1, 1.5),
		"retransmission": abenet.Retransmission(0.5, 0.5),
		"bimodal":        abenet.Bimodal(abenet.Deterministic(0.5), abenet.Deterministic(5.5), 0.1),
	}
	for name, d := range families {
		name, d := name, d
		t.Run(name, func(t *testing.T) {
			cfg := abenet.ElectionConfig{
				N:     12,
				A0:    abenet.DefaultA0(12),
				Delay: d,
				Seed:  99,
			}
			first, err := abenet.RunElection(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := abenet.RunElection(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("results diverged:\n  run 1: %+v\n  run 2: %+v", first, second)
			}
			// Belt and braces: the rendered representation (every field,
			// including float bit patterns via %#v) must match byte for
			// byte, catching any future field DeepEqual treats loosely.
			if a, b := fmt.Sprintf("%#v", first), fmt.Sprintf("%#v", second); a != b {
				t.Fatalf("rendered results diverged:\n  run 1: %s\n  run 2: %s", a, b)
			}
			if first.Leaders != 1 {
				t.Fatalf("leaders = %d", first.Leaders)
			}
		})
	}
}
